//! The wire-codec layer: what bytes actually travel for one model update.
//!
//! [`PayloadCodec`] decides *per consumer, per update* whether to ship the
//! full checkpoint or an incremental [`viper_formats::delta`] against that
//! consumer's last **acknowledged** base version, and frames the chosen
//! bytes with an explicit payload-kind envelope ([`viper_formats::wire`])
//! so the receiver dispatches by header, never by sniffing body magics.
//! The delivery engine below ([`deliver`] / [`DeliveryTask`]) drives the
//! framed payload over the fabric — chunking, CRC, fault injection,
//! NACK/retransmit, and the durable PFS fallback all compose with it. The
//! reliable path is event-driven: the save thread submits one
//! [`DeliveryJob`] to the reactor (blocking on its reply only in
//! non-coalescing mode), while the reactor's scheduler drives every flow's
//! [`FlowMachine`] from feedback mail and virtual-clock ack timers.
//!
//! ## Backpressure and coalescing
//!
//! With [`ViperConfig::coalesce_updates`] the save path does not block at
//! all: admission is unconditional (launch or queue) and its outcome
//! carries nothing the submitter does not already know, so `save` returns
//! the moment the job is posted — wait-free capture-to-return. The
//! task may drive several updates concurrently. Each `(consumer, model)`
//! pair is a **lane**: while a lane has a flow in flight, newer updates
//! for it queue in a bounded [`CoalesceQueue`] that collapses to the
//! latest — superseded versions are dropped before they ever touch the
//! wire, counted per consumer (`producer.{node}.updates_superseded.*`)
//! and in aggregate, with the total backlog exported as the
//! `producer.{node}.queue_depth` gauge. A congested lane also backs its
//! retransmissions off harder: the retry pause grows with the lane's
//! backlog ([`RetryPolicy::backoff_with_pressure`]). An update that
//! exhausts its retries skips the durable PFS fallback when a newer
//! version is already queued behind the same lane — the newer version
//! supersedes it for that consumer.
//!
//! Full-checkpoint fallback rules (the codec never guesses):
//!
//! * a consumer with no acknowledged base (freshly attached, or forgotten
//!   after an exhausted delivery) gets a full;
//! * a consumer whose acknowledged base is no longer retained (pruned) or
//!   not older than the update gets a full;
//! * a consumer that replies `NeedFull` (its slot lost the base — e.g. it
//!   restarted under the same node name) gets the update re-sent as a full
//!   on a fresh flow, and its base tracking is reset;
//! * the durable paths — background PFS flush, exhaustion fallback, and
//!   everything the recovery/pull code reads — always store **raw, unframed
//!   full encodings**; the envelope exists only on the wire.
//!
//! Virtual-time accounting: encoding a delta charges one full-model read
//! pass (the diff) at the route's staging bandwidth via
//! [`viper_hw::stage_time`], from the delivery's causal frontier — and the
//! whole reliable engine charges *causally*: feedback is handled at its
//! arrival instant, timers at their deadline, never at the racy
//! `clock.now()` — so the deterministic-timeline invariant (disabled vs
//! enabled telemetry is bit-identical) holds with delta transfer on and
//! stays independent of thread scheduling even while a coalescing
//! producer saves concurrently with in-flight deliveries.

use crate::config::ViperConfig;
use crate::context::Viper;
use crate::producer::charge_at;
use crate::UPDATE_TOPIC;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;
use viper_formats::{delta, wire, Checkpoint, Payload, PayloadKind, StreamingEncoder};
use viper_hw::{stage_time, MachineProfile, Route, SimInstant, Tier};
use viper_metastore::ModelRecord;
use viper_net::{
    ChunkedSend, CoalesceQueue, Control, Endpoint, FeedbackKind, FlowAction, FlowEvent,
    FlowMachine, LinkKind, MessageKind, ReactorTask, TaskCtx,
};
use viper_telemetry::{Counter, Gauge, Telemetry};

/// Observability counters for the delivery path. Registered in the
/// deployment's telemetry metrics registry under per-node names
/// (`producer.{node}.retransmits`, ...) so `trace_dump`-style tooling sees
/// them; metrics stay live even when trace recording is disabled, so the
/// public accessors always report.
pub(crate) struct DeliveryCounters {
    /// Retransmission rounds performed (NACK-driven or ack-timeout blind).
    pub(crate) retransmits: Counter,
    /// Deliveries that exhausted the retry budget.
    pub(crate) exhausted: Counter,
    /// Updates degraded to the durable PFS route after exhaustion.
    pub(crate) pfs_fallbacks: Counter,
    /// Delta-encoded sends attempted (delta transfer enabled, base known).
    pub(crate) delta_sends: Counter,
    /// Full-checkpoint sends while delta transfer was enabled: fresh
    /// consumer, missing/stale/pruned base, or a `NeedFull` reply.
    pub(crate) delta_fallbacks: Counter,
    /// Wire bytes saved by delta encoding vs the full encoding.
    pub(crate) delta_bytes_saved: Counter,
    /// Payload bytes memcpy'd on the delivery path (envelope framing).
    /// Zero on the steady-state path: chunk bodies are zero-copy subslices
    /// of the serialized checkpoint, so only the (at-most-once-per-update)
    /// full-envelope framing under delta transfer copies anything.
    pub(crate) bytes_copied: Counter,
    /// Fresh payload-buffer allocations on the delivery path (framed fulls
    /// and encoded deltas; the per-save serialize allocation is counted by
    /// the producer).
    pub(crate) payload_allocs: Counter,
    /// Feedback frames dropped because they referenced an unknown flow, a
    /// finished flow, or a superseded retransmission generation. Stale
    /// feedback is expected under reordering faults; it must be counted,
    /// never acted on.
    pub(crate) stale_feedback: Counter,
    /// Updates dropped from a lane's coalescing queue because a newer
    /// version arrived while the lane was congested (aggregate across
    /// consumers; per-consumer counts live under
    /// `producer.{node}.updates_superseded.{consumer}`).
    pub(crate) updates_superseded: Counter,
    /// Current total backlog across every lane's coalescing queue.
    pub(crate) queue_depth: Gauge,
    /// Group-level ACKs received from relay-tree roots: each one resolves
    /// a whole subtree that direct delivery would have ACKed member by
    /// member.
    pub(crate) group_acks: Counter,
    /// Relay failures that re-parented a subtree (the orphaned members
    /// were delivered directly as a counted fallback).
    pub(crate) reparent_events: Counter,
}

impl DeliveryCounters {
    pub(crate) fn new(telemetry: &Telemetry, node: &str) -> Self {
        DeliveryCounters {
            retransmits: telemetry.counter(&format!("producer.{node}.retransmits")),
            exhausted: telemetry.counter(&format!("producer.{node}.deliveries_exhausted")),
            pfs_fallbacks: telemetry.counter(&format!("producer.{node}.pfs_fallbacks")),
            delta_sends: telemetry.counter(&format!("producer.{node}.delta_sends")),
            delta_fallbacks: telemetry.counter(&format!("producer.{node}.delta_fallbacks")),
            delta_bytes_saved: telemetry.counter(&format!("producer.{node}.delta_bytes_saved")),
            bytes_copied: telemetry.counter(&format!("producer.{node}.bytes_copied")),
            payload_allocs: telemetry.counter(&format!("producer.{node}.payload_allocs")),
            stale_feedback: telemetry.counter(&format!("producer.{node}.stale_feedback")),
            updates_superseded: telemetry.counter(&format!("producer.{node}.updates_superseded")),
            queue_depth: telemetry.gauge(&format!("producer.{node}.queue_depth")),
            group_acks: telemetry.counter(&format!("producer.{node}.group_acks")),
            reparent_events: telemetry.counter(&format!("producer.{node}.reparent_events")),
        }
    }
}

/// Stable trace label for a route (avoids allocating Debug strings).
pub(crate) fn route_label(route: Route) -> &'static str {
    match route {
        Route::GpuToGpu => "gpu-to-gpu",
        Route::HostToHost => "host-to-host",
        Route::PfsStaging => "pfs-staging",
    }
}

/// What travels the wire for one consumer.
pub(crate) struct WirePayload {
    /// Body layout the envelope advertises.
    pub(crate) kind: PayloadKind,
    /// The bytes handed to the fabric (framed when the codec is active,
    /// a zero-copy view of the raw full encoding otherwise).
    pub(crate) bytes: Payload,
    /// Per-chunk CRCs of `bytes` under the update's chunk geometry,
    /// computed in the same pass that serialized them. Handed to the
    /// fabric so neither the initial send nor any retransmission round
    /// re-reads the payload to checksum it.
    pub(crate) crcs: Option<Arc<Vec<u32>>>,
}

/// A framed wire encoding plus its encode-time per-chunk CRCs.
type FramedBytes = (Payload, Arc<Vec<u32>>);

/// Envelope-frame `body` through the streaming encoder: the one
/// unavoidable body copy under delta transfer doubles as the chunk CRC
/// pass, so the bytes are read exactly once.
fn frame_streaming(kind: PayloadKind, body: &[u8], chunk_bytes: u64) -> FramedBytes {
    let mut enc = StreamingEncoder::new(chunk_bytes);
    enc.put_bytes(&wire::envelope(kind));
    enc.put_bytes(body);
    let encoded = enc.finish();
    (encoded.payload, encoded.chunk_crcs)
}

/// Per-model memo of encoded wire payloads for the codec's *current*
/// update: the full framing happens at most once, and a delta against a
/// given base is diffed/encoded (and its diff pass charged) at most once
/// even when several consumers share the acknowledged base. The memo is
/// keyed to one target iteration — a newer save resets it — and delta
/// entries are evicted when retention prunes their base, so the cache
/// never accretes encodings that [`PayloadCodec::base_for`] would refuse
/// to choose again.
#[derive(Default)]
struct ModelWireCache {
    /// Iteration the cached encodings were produced for.
    target: u64,
    full: Option<FramedBytes>,
    /// base iteration → framed delta (with its chunk CRCs); `None` caches
    /// a failed diff (architecture changed), so it is not retried per
    /// consumer.
    deltas: HashMap<u64, Option<FramedBytes>>,
}

impl ModelWireCache {
    fn reset_to(&mut self, target: u64) {
        if self.target != target {
            *self = ModelWireCache {
                target,
                ..ModelWireCache::default()
            };
        }
    }
}

/// Per-producer delta state: retained diff bases and per-consumer
/// acknowledged iterations. Inactive (all methods no-ops, `encode_for`
/// passes the raw payload through) unless both `delta_transfer` and
/// `reliable_delivery` are configured — a base is only "acknowledged"
/// through the ACK channel.
pub(crate) struct PayloadCodec {
    active: bool,
    keep: usize,
    /// Recently saved checkpoints usable as diff bases: model → iteration
    /// → checkpoint, pruned alongside the metadata DB's version budget.
    retained: Mutex<HashMap<String, BTreeMap<u64, Arc<Checkpoint>>>>,
    /// Last iteration each (consumer, model) pair ACKed an install of.
    acked: Mutex<HashMap<(String, String), u64>>,
    /// Encoded-payload memo per model (see [`ModelWireCache`]).
    wire_cache: Mutex<HashMap<String, ModelWireCache>>,
}

impl PayloadCodec {
    pub(crate) fn new(config: &ViperConfig) -> Self {
        PayloadCodec {
            active: config.delta_transfer && config.reliable_delivery,
            keep: config.keep_versions.max(1),
            retained: Mutex::new(HashMap::new()),
            acked: Mutex::new(HashMap::new()),
            wire_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Whether updates are delta-encoded (and therefore envelope-framed).
    pub(crate) fn active(&self) -> bool {
        self.active
    }

    /// Retain a captured checkpoint as a future diff base, pruned to the
    /// configured version budget. Pruning also evicts the wire cache's
    /// delta entries for the pruned bases: `base_for` refuses a pruned
    /// base, so a cached encoding against one can never be chosen again —
    /// keeping it would leak one framed payload per pruned version.
    pub(crate) fn retain(&self, ckpt: &Arc<Checkpoint>) {
        if !self.active {
            return;
        }
        let surviving: Vec<u64> = {
            let mut retained = self.retained.lock();
            let bases = retained.entry(ckpt.model_name.clone()).or_default();
            bases.insert(ckpt.iteration, Arc::clone(ckpt));
            while bases.len() > self.keep {
                let oldest = *bases.keys().next().expect("non-empty");
                bases.remove(&oldest);
            }
            bases.keys().copied().collect()
        };
        let mut caches = self.wire_cache.lock();
        if let Some(cache) = caches.get_mut(&ckpt.model_name) {
            cache
                .deltas
                .retain(|base, _| surviving.binary_search(base).is_ok());
            debug_assert!(
                cache
                    .deltas
                    .keys()
                    .all(|base| surviving.binary_search(base).is_ok()),
                "wire cache must never hold a delta whose base was pruned"
            );
        }
    }

    /// Newest retained iteration for `model` — the base a delta of the
    /// *next* save would diff against (recorded as the new version's
    /// `base_iteration` hint).
    pub(crate) fn newest_retained(&self, model: &str) -> Option<u64> {
        self.retained
            .lock()
            .get(model)
            .and_then(|bases| bases.keys().next_back().copied())
    }

    /// The base checkpoint a delta for `consumer` must diff against: its
    /// last acknowledged iteration, if that checkpoint is still retained.
    fn base_for(&self, consumer: &str, model: &str) -> Option<Arc<Checkpoint>> {
        let acked = *self
            .acked
            .lock()
            .get(&(consumer.to_string(), model.to_string()))?;
        self.retained.lock().get(model)?.get(&acked).cloned()
    }

    /// The common delta base for a whole relay group: the base checkpoint
    /// every member has acknowledged, if they all acknowledged the *same*
    /// iteration and it is still retained. A relay re-serves one wire
    /// image to its whole subtree, so a group delta is only safe when it
    /// applies at every member; any divergence falls back to a full.
    fn group_base(&self, members: &[String], model: &str) -> Option<Arc<Checkpoint>> {
        if !self.active {
            return None;
        }
        let acked = self.acked.lock();
        let mut common: Option<u64> = None;
        for member in members {
            let it = *acked.get(&(member.clone(), model.to_string()))?;
            match common {
                None => common = Some(it),
                Some(c) if c == it => {}
                Some(_) => return None,
            }
        }
        let it = common?;
        drop(acked);
        self.retained.lock().get(model)?.get(&it).cloned()
    }

    /// Record that `consumer` acknowledged installing `iteration`.
    pub(crate) fn note_acked(&self, consumer: &str, model: &str, iteration: u64) {
        if !self.active {
            return;
        }
        self.acked
            .lock()
            .insert((consumer.to_string(), model.to_string()), iteration);
    }

    /// Drop `consumer`'s base tracking (exhausted delivery or `NeedFull`):
    /// the next update falls back to a full checkpoint.
    pub(crate) fn forget(&self, consumer: &str, model: &str) {
        if !self.active {
            return;
        }
        self.acked
            .lock()
            .remove(&(consumer.to_string(), model.to_string()));
    }

    /// Memoized framed-full encoding of `model`'s update `target`,
    /// producing (and counting) it on first use.
    fn full_framed_cached(
        &self,
        model: &str,
        target: u64,
        payload: &Payload,
        chunk_bytes: u64,
        counters: &DeliveryCounters,
    ) -> FramedBytes {
        let mut caches = self.wire_cache.lock();
        let entry = caches.entry(model.to_string()).or_default();
        entry.reset_to(target);
        entry
            .full
            .get_or_insert_with(|| {
                // The one remaining full-payload copy under delta transfer:
                // prefixing the envelope header rewrites the body. Done at
                // most once per update, surfaced in the counters, and fused
                // with the chunk CRC pass.
                counters.bytes_copied.add(payload.len() as u64);
                counters.payload_allocs.inc();
                frame_streaming(PayloadKind::Full, payload.as_slice(), chunk_bytes)
            })
            .clone()
    }

    /// Memoized delta of `model`'s update `target` against `base`,
    /// invoking `make` (which encodes and charges the diff pass) on first
    /// use. A memoized `None` records a failed diff so it is not retried
    /// per consumer.
    fn delta_cached(
        &self,
        model: &str,
        target: u64,
        base: u64,
        make: impl FnOnce() -> Option<FramedBytes>,
    ) -> Option<FramedBytes> {
        let mut caches = self.wire_cache.lock();
        let entry = caches.entry(model.to_string()).or_default();
        entry.reset_to(target);
        entry.deltas.entry(base).or_insert_with(make).clone()
    }

    /// The already-framed full for `model`'s update `target`, if one was
    /// memoized while encoding the fan-out.
    pub(crate) fn cached_full(&self, model: &str, target: u64) -> Option<FramedBytes> {
        self.wire_cache
            .lock()
            .get(model)
            .filter(|entry| entry.target == target)
            .and_then(|entry| entry.full.clone())
    }

    #[cfg(test)]
    fn cached_delta_bases(&self, model: &str) -> Vec<u64> {
        let mut bases: Vec<u64> = self
            .wire_cache
            .lock()
            .get(model)
            .map(|entry| entry.deltas.keys().copied().collect())
            .unwrap_or_default();
        bases.sort_unstable();
        bases
    }
}

/// Choose and encode the wire payload for one consumer. With the codec
/// inactive this is the identity: the raw full encoding travels unframed,
/// byte-identical to a build without the codec layer.
#[allow(clippy::too_many_arguments)]
fn encode_for(
    viper: &Viper,
    codec: &PayloadCodec,
    consumer: &str,
    record: &ModelRecord,
    ckpt: Option<&Arc<Checkpoint>>,
    payload: &Payload,
    payload_crcs: &Arc<Vec<u32>>,
    chunk_bytes: u64,
    route: Route,
    counters: &DeliveryCounters,
    frontier: &mut SimInstant,
    track: &str,
) -> WirePayload {
    if !codec.active() {
        return WirePayload {
            kind: PayloadKind::Full,
            bytes: payload.clone(),
            crcs: Some(Arc::clone(payload_crcs)),
        };
    }
    let shared = &viper.shared;
    let telemetry = &shared.config.telemetry;
    if let Some(ckpt) = ckpt {
        if let Some(base) = codec
            .base_for(consumer, &record.name)
            .filter(|b| b.iteration < ckpt.iteration)
        {
            let encoded = codec.delta_cached(&record.name, ckpt.iteration, base.iteration, || {
                // The delta streams straight into its framed wire form:
                // envelope, diff payload, and chunk CRCs in one pass. The
                // diff itself is streaming too (`diff_into`): changed
                // tensors encode directly off the compare pass, so no
                // DeltaCheckpoint, tensor clone, or intermediate buffer
                // ever materializes on the send path.
                let framed = {
                    let mut enc = StreamingEncoder::new(chunk_bytes);
                    enc.put_bytes(&wire::envelope(PayloadKind::Delta));
                    match delta::diff_into(&base, ckpt, &mut enc) {
                        Ok(_) => {
                            counters.payload_allocs.inc();
                            let encoded = enc.finish();
                            Some((encoded.payload, encoded.chunk_crcs))
                        }
                        Err(_) => None,
                    }
                };
                if framed.is_some() {
                    // The diff is one read pass over the full model at the
                    // route's staging bandwidth, charged causally from the
                    // delivery frontier.
                    let t0 = *frontier;
                    *frontier = charge_at(
                        &shared.clock,
                        t0,
                        stage_time(&shared.config.profile, route, payload.len() as u64),
                    );
                    telemetry.complete(
                        "producer",
                        "encode.delta",
                        track,
                        t0.as_nanos(),
                        frontier.as_nanos(),
                        &[
                            ("base_iteration", base.iteration.into()),
                            ("iteration", ckpt.iteration.into()),
                        ],
                    );
                }
                framed
            });
            if let Some((bytes, crcs)) = encoded {
                counters.delta_sends.inc();
                let full_len = (payload.len() + wire::WIRE_HEADER_BYTES) as u64;
                counters
                    .delta_bytes_saved
                    .add(full_len.saturating_sub(bytes.len() as u64));
                return WirePayload {
                    kind: PayloadKind::Delta,
                    bytes,
                    crcs: Some(crcs),
                };
            }
        }
    }
    counters.delta_fallbacks.inc();
    let (bytes, crcs) = codec.full_framed_cached(
        &record.name,
        record.iteration,
        payload,
        chunk_bytes,
        counters,
    );
    WirePayload {
        kind: PayloadKind::Full,
        bytes,
        crcs: Some(crcs),
    }
}

/// Choose and encode the *shared* wire payload for one relay group (a
/// tree root plus its whole subtree). The same bytes are re-served down
/// every level, so a delta is chosen only when
/// [`PayloadCodec::group_base`] proves it applies at every member;
/// otherwise the group gets the memoized framed full. With the codec
/// inactive the raw full travels unframed, exactly as on the direct path.
#[allow(clippy::too_many_arguments)]
fn encode_group(
    viper: &Viper,
    codec: &PayloadCodec,
    members: &[String],
    record: &ModelRecord,
    ckpt: Option<&Arc<Checkpoint>>,
    payload: &Payload,
    payload_crcs: &Arc<Vec<u32>>,
    chunk_bytes: u64,
    route: Route,
    counters: &DeliveryCounters,
    frontier: &mut SimInstant,
    track: &str,
) -> WirePayload {
    if !codec.active() {
        return WirePayload {
            kind: PayloadKind::Full,
            bytes: payload.clone(),
            crcs: Some(Arc::clone(payload_crcs)),
        };
    }
    let shared = &viper.shared;
    let telemetry = &shared.config.telemetry;
    if let Some(ckpt) = ckpt {
        if let Some(base) = codec
            .group_base(members, &record.name)
            .filter(|b| b.iteration < ckpt.iteration)
        {
            let encoded = codec.delta_cached(&record.name, ckpt.iteration, base.iteration, || {
                // Same fused framing as the per-consumer path: the
                // streaming diff writes envelope, changed tensors, and
                // chunk CRCs in one pass with no materialized delta.
                let framed = {
                    let mut enc = StreamingEncoder::new(chunk_bytes);
                    enc.put_bytes(&wire::envelope(PayloadKind::Delta));
                    match delta::diff_into(&base, ckpt, &mut enc) {
                        Ok(_) => {
                            counters.payload_allocs.inc();
                            let encoded = enc.finish();
                            Some((encoded.payload, encoded.chunk_crcs))
                        }
                        Err(_) => None,
                    }
                };
                if framed.is_some() {
                    let t0 = *frontier;
                    *frontier = charge_at(
                        &shared.clock,
                        t0,
                        stage_time(&shared.config.profile, route, payload.len() as u64),
                    );
                    telemetry.complete(
                        "producer",
                        "encode.delta",
                        track,
                        t0.as_nanos(),
                        frontier.as_nanos(),
                        &[
                            ("base_iteration", base.iteration.into()),
                            ("iteration", ckpt.iteration.into()),
                        ],
                    );
                }
                framed
            });
            if let Some((bytes, crcs)) = encoded {
                counters.delta_sends.inc();
                let full_len = (payload.len() + wire::WIRE_HEADER_BYTES) as u64;
                counters
                    .delta_bytes_saved
                    .add(full_len.saturating_sub(bytes.len() as u64));
                return WirePayload {
                    kind: PayloadKind::Delta,
                    bytes,
                    crcs: Some(crcs),
                };
            }
        }
    }
    counters.delta_fallbacks.inc();
    let (bytes, crcs) = codec.full_framed_cached(
        &record.name,
        record.iteration,
        payload,
        chunk_bytes,
        counters,
    );
    WirePayload {
        kind: PayloadKind::Full,
        bytes,
        crcs: Some(crcs),
    }
}

/// The producer-side capture model for a memory route, as the fabric's
/// chunked send expects it: `(bandwidth, per-chunk fixed, per-flow fixed)`.
fn chunk_capture_model(
    profile: &MachineProfile,
    route: Route,
    ntensors: usize,
) -> (f64, Duration, Duration) {
    let (bw, tier) = match route {
        Route::GpuToGpu => (profile.gpu_capture_bw, Tier::GpuMem),
        _ => (profile.d2h_capture_bw, Tier::HostMem),
    };
    let spec = profile.tier(tier);
    (
        bw,
        spec.write_latency,
        spec.per_tensor_write.mul_f64(ntensors as f64),
    )
}

/// One reliable fan-out handed to the producer's [`DeliveryTask`] on the
/// reactor. The caller pre-encodes every consumer's wire payload (so delta
/// diff charges stay on the save path's causal frontier), submits the job,
/// and blocks on `reply` — delivery itself is driven entirely by reactor
/// events: completion mail and virtual-clock ack timers, never a parked
/// thread per consumer. Without coalescing the reply arrives once every
/// flow is terminal; with coalescing it arrives at admission and the task
/// drives the update to completion (or supersession) in the background.
pub(crate) struct DeliveryJob {
    /// `(consumer node, encoded payload)` in fan-out order. Under
    /// relay-tree distribution these are the tree *roots* only.
    pub(crate) consumers: Vec<(String, WirePayload)>,
    /// Relay-tree delivery groups: root → its whole subtree (root first).
    /// Empty on the direct path. A root's ACK resolves (and base-tracks)
    /// every non-escalated member of its group.
    pub(crate) groups: BTreeMap<String, Vec<String>>,
    pub(crate) tag: String,
    pub(crate) link: LinkKind,
    pub(crate) chunk_bytes: u64,
    /// Pipelined-capture model for the first successful send (the snapshot
    /// happens once; later flows re-send already captured chunks).
    pub(crate) capture: Option<(f64, Duration, Duration)>,
    /// The raw full encoding (for materializing a framed full on
    /// `NeedFull`, and for the deferred durable fallback under coalescing).
    pub(crate) payload: Payload,
    /// Already-framed full (with chunk CRCs) from the codec's encode
    /// cache, if one was made.
    pub(crate) framed_full: Option<FramedBytes>,
    /// Metadata of the version being delivered (fallback relocation and
    /// notification need the full record, not just name/iteration).
    pub(crate) record: ModelRecord,
    pub(crate) track: String,
    pub(crate) frontier: SimInstant,
    pub(crate) reply: Sender<DeliveryDone>,
}

/// A drain barrier submitted to the [`DeliveryTask`]: replied to once no
/// update is in flight (immediately if idle). The coalescing producer's
/// shutdown path uses it to let background deliveries resolve before the
/// task deregisters.
pub(crate) struct DrainBarrier {
    pub(crate) reply: Sender<()>,
}

/// The reply to a [`DeliveryJob`] once every flow reached a terminal state
/// (admission, under coalescing).
pub(crate) struct DeliveryDone {
    /// Consumers that ACKed an install (consumers admitted, under
    /// coalescing — terminal outcomes surface via counters instead).
    pub(crate) delivered: usize,
    /// At least one consumer exhausted the retry budget: degrade to PFS.
    /// Always false under coalescing — the task runs the durable fallback
    /// itself when the update finishes.
    pub(crate) fall_back: bool,
    /// Causal frontier extended by the ACK arrival instants.
    pub(crate) frontier: SimInstant,
}

/// Push the update to every attached consumer and publish the update
/// notification. For the PFS route consumers pull from the shared tier, so
/// only the notification is sent. With `ViperConfig::chunked_transfer` the
/// payload travels as a pipelined chunked flow; `pipeline_capture` lets the
/// first send model the (not yet charged) capture overlapping the wire.
///
/// `payload` is always the **raw full encoding** — it is what the staging
/// tiers, the PFS fallback, and the pull path read. What each consumer is
/// actually sent is decided per consumer by the [`PayloadCodec`] (delta vs
/// framed full vs raw passthrough).
///
/// With `ViperConfig::reliable_delivery` every memory-route send is
/// ACK-gated with NACK-driven retransmission; if a consumer exhausts the
/// retry budget the update degrades to the durable PFS route (written
/// synchronously, relocated in the metadata DB) and the published
/// notification points there, so the consumer's pull path recovers it.
///
/// `frontier_base` is the causal instant the delivery starts from; `None`
/// reads the shared clock (correct whenever the caller just charged its
/// own work there). A coalescing producer passes its private save
/// frontier instead — the shared clock races ahead with concurrently
/// applying consumers, and basing charges on it would make the timeline
/// depend on thread scheduling. Returns how many consumers were pushed a
/// payload (admitted, under coalescing).
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver(
    viper: &Viper,
    endpoint: &Endpoint,
    codec: &PayloadCodec,
    record: &ModelRecord,
    ckpt: Option<&Arc<Checkpoint>>,
    payload: &Payload,
    payload_crcs: &Arc<Vec<u32>>,
    route: Route,
    pipeline_capture: bool,
    counters: &DeliveryCounters,
    track: &str,
    frontier_base: Option<SimInstant>,
) -> usize {
    let shared = &viper.shared;
    let telemetry = &shared.config.telemetry;
    let mut span = telemetry.span_with(
        "producer",
        "deliver",
        track,
        &[
            ("version", record.version.into()),
            ("route", route_label(route).into()),
        ],
    );
    let link = match route {
        Route::GpuToGpu => Some(LinkKind::GpuDirect),
        Route::HostToHost => Some(LinkKind::HostRdma),
        Route::PfsStaging => None,
    };
    let mut sent = 0;
    let mut fall_back = false;
    // Causal frontier of this delivery: every successful send extends it to
    // the flow's (or its ACK's) computed completion instant, and the notify
    // latency is charged from it rather than from `clock.now()` — a
    // concurrently applying consumer advances the shared clock, and basing
    // the charge on the racy frontier would make the timeline depend on
    // thread scheduling.
    let mut frontier = frontier_base.unwrap_or_else(|| shared.clock.now());
    if let Some(link) = link {
        let tag = format!("{}:{}", record.name, record.version);
        let consumers = shared.consumers.read().clone();
        let config = &shared.config;
        if config.reliable_delivery {
            // Reliability implies the chunked machinery (a monolithic
            // payload travels as a 1-chunk flow) so every byte is CRC
            // checked and every flow ACK-gated. The flows themselves are
            // driven by this producer's reactor task; the save path blocks
            // here only for the job reply, holding zero threads per
            // consumer.
            let chunk_bytes = if config.chunked_transfer {
                config.chunk_bytes
            } else {
                0
            };
            let eligible: Vec<String> = consumers
                .into_iter()
                .filter(|c| c != endpoint.node())
                .collect();
            let mut job_consumers = Vec::new();
            // Relay-tree mode: organize the fleet into the deployment's
            // topology and target only the tree roots — each root's group
            // shares one wire image, re-served down the tree by the
            // relays themselves.
            let groups = shared.distribution.refresh(&eligible).unwrap_or_default();
            if groups.is_empty() {
                for consumer in eligible {
                    let wire_payload = encode_for(
                        viper,
                        codec,
                        &consumer,
                        record,
                        ckpt,
                        payload,
                        payload_crcs,
                        chunk_bytes,
                        route,
                        counters,
                        &mut frontier,
                        track,
                    );
                    job_consumers.push((consumer, wire_payload));
                }
            } else {
                for (root, members) in &groups {
                    let wire_payload = encode_group(
                        viper,
                        codec,
                        members,
                        record,
                        ckpt,
                        payload,
                        payload_crcs,
                        chunk_bytes,
                        route,
                        counters,
                        &mut frontier,
                        track,
                    );
                    job_consumers.push((root.clone(), wire_payload));
                }
            }
            if !job_consumers.is_empty() {
                let admitted = job_consumers.len();
                let coalesce = config.coalesce_updates;
                let (reply_tx, reply_rx) = unbounded();
                let capture = pipeline_capture
                    .then(|| chunk_capture_model(&config.profile, route, record.ntensors));
                shared.reactor.submit(
                    endpoint.node(),
                    Box::new(DeliveryJob {
                        consumers: job_consumers,
                        groups,
                        tag,
                        link,
                        chunk_bytes,
                        capture,
                        payload: payload.clone(),
                        framed_full: codec.cached_full(&record.name, record.iteration),
                        record: record.clone(),
                        track: track.to_string(),
                        frontier,
                        reply: reply_tx,
                    }),
                );
                if coalesce {
                    // Wait-free save path: under coalescing every consumer
                    // is admitted unconditionally (launched or queued) and
                    // the admission reply carries nothing the submitter
                    // does not already know, so blocking on it would only
                    // add a reactor round-trip to capture-to-return
                    // latency. Terminal outcomes surface through counters
                    // and `flush_deliveries`, exactly as before.
                    sent = admitted;
                } else {
                    // Blocking mode: the reply arrives once every flow is
                    // terminal, preserving one fan-out at a time.
                    let done = reply_rx.recv().expect("delivery reactor replies");
                    sent = done.delivered;
                    fall_back = done.fall_back;
                    frontier = frontier.max(done.frontier);
                }
            }
        } else {
            let mut inline_capture = pipeline_capture;
            for consumer in consumers {
                if consumer == endpoint.node() {
                    continue;
                }
                // A deregistered consumer is not an error: it raced shutdown.
                let delivered = if config.chunked_transfer {
                    // The raw payload travels as-is, so its encode-time
                    // chunk CRCs apply directly.
                    let mut opts =
                        ChunkedSend::new(config.chunk_bytes).with_crcs(Arc::clone(payload_crcs));
                    if inline_capture {
                        let (bw, fixed, once) =
                            chunk_capture_model(&config.profile, route, record.ntensors);
                        opts = opts.with_capture(bw, fixed, once);
                    }
                    match endpoint.send_chunked(&consumer, &tag, payload.clone(), link, &opts) {
                        Ok(report) => {
                            frontier = frontier.max(report.completed_at);
                            true
                        }
                        Err(_) => false,
                    }
                } else {
                    match endpoint.send(&consumer, &tag, payload.clone(), link) {
                        Ok(wire) => {
                            frontier = frontier.add(wire);
                            true
                        }
                        Err(_) => false,
                    }
                };
                if delivered {
                    sent += 1;
                    // The snapshot happens once; fan-out to further consumers
                    // re-sends the already captured chunks.
                    inline_capture = false;
                }
            }
        }
    }
    // Graceful degradation: the wire gave up on at least one consumer, so
    // make this version durable NOW (not just in the background flush) and
    // point the notification at the PFS copy — consumers recover via the
    // repository pull path. The durable copy is always the raw full
    // encoding, never a framed or delta payload.
    let mut notify = record.clone();
    if fall_back {
        let t0 = telemetry.now_ns();
        let pfs_path = format!("pfs/{}/v{}", record.name, record.version);
        if shared
            .pfs
            .write(&pfs_path, payload.clone(), record.ntensors)
            .is_ok()
        {
            shared
                .db
                .relocate(&record.name, record.version, Tier::Pfs.name(), &pfs_path);
            notify.location = Tier::Pfs.name().to_string();
            notify.path = pfs_path;
            counters.pfs_fallbacks.inc();
        }
        telemetry.complete(
            "producer",
            "pfs_fallback",
            track,
            t0,
            telemetry.now_ns(),
            &[("version", record.version.into())],
        );
    }
    charge_at(
        &shared.clock,
        frontier,
        shared.config.profile.notify_latency,
    );
    let notified = shared.bus.publish(UPDATE_TOPIC, notify);
    // Consumer discovery runs on the reactor: nudge every task to drain its
    // subscription (push mode) or check the metadata DB (poll mode).
    shared.reactor.wake_all();
    span.arg("pushed", sent.into());
    span.arg("notified", notified.into());
    drop(span);
    sent
}

/// One in-flight reliable flow owned by the [`DeliveryTask`].
struct FlowSend {
    /// The update (task-local sequence number) this flow carries.
    seq: u64,
    consumer: String,
    machine: FlowMachine,
    /// The wire bytes this flow carries (retransmission source).
    bytes: Payload,
    /// Encode-time per-chunk CRCs of `bytes`: retransmission rounds reuse
    /// them instead of re-checksumming retained chunks.
    crcs: Option<Arc<Vec<u32>>>,
    num_chunks: u32,
    /// This flow is the full-checkpoint retry after a `NeedFull` reply — a
    /// full can't be rejected for a missing base, so a repeat `NeedFull`
    /// fails the delivery instead of re-sending.
    full_retry: bool,
    /// Envelope kind of `bytes` (trace label on `delta_rejected`).
    kind: PayloadKind,
}

/// One update the [`DeliveryTask`] is driving. Without coalescing at most
/// one exists at a time (the save path blocks on the reply before
/// submitting another); with coalescing several proceed concurrently,
/// serialized per lane.
struct UpdateState {
    tag: String,
    link: LinkKind,
    chunk_bytes: u64,
    payload: Payload,
    framed_full: Option<FramedBytes>,
    record: ModelRecord,
    track: String,
    /// Consumer slots not yet resolved (terminal flow or superseded in
    /// queue). Under relay-tree distribution this counts *flows* the
    /// producer itself drives — one per tree root, plus one per member
    /// escalated to a direct send — not subtree members.
    remaining: usize,
    delivered: usize,
    fall_back: bool,
    frontier: SimInstant,
    /// Relay-tree delivery groups (root → subtree); empty on the direct
    /// path.
    groups: BTreeMap<String, Vec<String>>,
    /// Subtree members escalated to a direct producer send (relay `Miss`
    /// or a re-parented subtree): excluded from the group resolution when
    /// their root's group ACK lands.
    escalated: HashSet<String>,
    /// `None` under coalescing: the job was already replied to at
    /// admission, and a terminal fallback runs on the task instead.
    reply: Option<Sender<DeliveryDone>>,
}

impl UpdateState {
    /// Materialize the framed full encoding, at most once per update
    /// (mirrors [`PayloadCodec::full_framed_cached`], including counters).
    fn full_framed(&mut self, counters: &DeliveryCounters) -> FramedBytes {
        let payload = &self.payload;
        let chunk_bytes = self.chunk_bytes;
        self.framed_full
            .get_or_insert_with(|| {
                counters.bytes_copied.add(payload.len() as u64);
                counters.payload_allocs.inc();
                frame_streaming(PayloadKind::Full, payload.as_slice(), chunk_bytes)
            })
            .clone()
    }
}

/// A queued outbound send waiting for its lane to free up.
struct QueuedSend {
    seq: u64,
    bytes: Payload,
    crcs: Option<Arc<Vec<u32>>>,
    kind: PayloadKind,
    /// The causal instant the payload became ready (the save frontier at
    /// admission): the launch starts no earlier, even if the lane frees
    /// first.
    ready_at: SimInstant,
}

/// Per-`(consumer, model)` outbound serialization: one flow in flight,
/// newer updates queue (collapsing to the latest) behind it.
struct Lane {
    /// Sequence number of the update currently on the wire, if any.
    in_flight: Option<u64>,
    queue: CoalesceQueue<QueuedSend>,
    /// Per-consumer superseded counter
    /// (`producer.{node}.updates_superseded.{consumer}`).
    superseded: Counter,
}

/// The producer's reactor task: owns every reliable flow this producer has
/// in flight as an explicit [`FlowMachine`], driven by feedback mail and
/// virtual-clock ack timers (timer token = flow id). Replaces the old
/// blocking loop that parked the save thread on a wall-clock
/// `recv_timeout(ack_timeout)` per consumer: an `ack_timeout` with no
/// feedback at all now surfaces as a quiescence-fired timer and
/// blind-resends the whole flow — charging the identical backoff to the
/// virtual clock, but holding no thread while "waiting". NACKs retransmit
/// exactly the missing chunks. Every retransmission round is preceded by a
/// [`Control::Round`] frame announcing the new generation, so the consumer
/// echoes it back and feedback from superseded rounds is dropped (and
/// counted) instead of acted on.
///
/// All timing is causal: feedback is processed at its arrival instant and
/// timers at their deadline, so the schedule a run produces is a pure
/// function of the configuration and fault seed — never of how the OS
/// interleaved the reactor with the save thread.
pub(crate) struct DeliveryTask {
    viper: Viper,
    endpoint: Arc<Endpoint>,
    codec: Arc<PayloadCodec>,
    counters: Arc<DeliveryCounters>,
    /// Collapse-to-latest coalescing on: admit updates without blocking
    /// the save path, serializing per lane.
    coalesce: bool,
    /// Bound of each lane's coalescing queue.
    queue_bound: usize,
    /// Next update sequence number (admission order, strictly increasing —
    /// doubles as the coalescing queue's version key).
    next_seq: u64,
    updates: HashMap<u64, UpdateState>,
    /// Flows not yet terminal, plus terminal flows of unfinished updates —
    /// kept so late feedback is recognized (and counted stale) instead of
    /// mistaken for an unknown sender.
    flows: HashMap<u64, FlowSend>,
    lanes: HashMap<(String, String), Lane>,
    /// Drain barriers waiting for `updates` to empty.
    waiters: Vec<Sender<()>>,
}

impl DeliveryTask {
    pub(crate) fn new(
        viper: Viper,
        endpoint: Arc<Endpoint>,
        codec: Arc<PayloadCodec>,
        counters: Arc<DeliveryCounters>,
    ) -> Self {
        let config = &viper.shared.config;
        let coalesce = config.coalesce_updates && config.reliable_delivery;
        let queue_bound = config.coalesce_queue_depth;
        DeliveryTask {
            viper,
            endpoint,
            codec,
            counters,
            coalesce,
            queue_bound,
            next_seq: 0,
            updates: HashMap::new(),
            flows: HashMap::new(),
            lanes: HashMap::new(),
            waiters: Vec::new(),
        }
    }

    fn lane_mut(&mut self, consumer: &str, model: &str) -> &mut Lane {
        let key = (consumer.to_string(), model.to_string());
        if !self.lanes.contains_key(&key) {
            let counter = self.viper.shared.config.telemetry.counter(&format!(
                "producer.{}.updates_superseded.{}",
                self.endpoint.node(),
                consumer
            ));
            self.lanes.insert(
                key.clone(),
                Lane {
                    in_flight: None,
                    queue: CoalesceQueue::new(self.queue_bound),
                    superseded: counter,
                },
            );
        }
        self.lanes.get_mut(&key).expect("just inserted")
    }

    fn refresh_queue_gauge(&self) {
        let depth: usize = self.lanes.values().map(|lane| lane.queue.len()).sum();
        self.counters.queue_depth.set(depth as i64);
    }

    /// Arm (or re-arm) a flow's ack timer, `ack_timeout` after the causal
    /// instant the (re)send completed. Per flow the deadline only ever
    /// moves forward: a retransmission round completes after the send it
    /// repairs.
    fn arm_ack_timer(&self, ctx: &mut TaskCtx<'_>, flow_id: u64, from: SimInstant) {
        let deadline = from.add(self.viper.shared.config.retry.ack_timeout);
        ctx.arm_timer_at(flow_id, deadline);
    }

    /// Launch one flow for update `seq` (initial fan-out, a queued send
    /// whose lane freed up, or the full retry after `NeedFull`) and
    /// register its state machine. Returns false if the consumer is gone
    /// (deregistered mid-shutdown) — a race, not a delivery failure.
    #[allow(clippy::too_many_arguments)]
    fn launch_flow(
        &mut self,
        ctx: &mut TaskCtx<'_>,
        seq: u64,
        consumer: String,
        bytes: Payload,
        crcs: Option<Arc<Vec<u32>>>,
        kind: PayloadKind,
        opts: &ChunkedSend,
        full_retry: bool,
    ) -> bool {
        let max_retries = self.viper.shared.config.retry.max_retries;
        let update = self
            .updates
            .get_mut(&seq)
            .expect("launch requires its update");
        // Hand the encode-time chunk CRCs to the fabric so the send does
        // not re-read the payload to checksum it.
        let opts = match &crcs {
            Some(c) => opts.clone().with_crcs(Arc::clone(c)),
            None => opts.clone(),
        };
        match self
            .endpoint
            .send_chunked(&consumer, &update.tag, bytes.clone(), update.link, &opts)
        {
            Ok(report) => {
                let mut machine = FlowMachine::new(max_retries);
                machine.on_event(FlowEvent::Sent);
                self.flows.insert(
                    report.flow_id,
                    FlowSend {
                        seq,
                        consumer,
                        machine,
                        bytes,
                        crcs,
                        num_chunks: report.num_chunks,
                        full_retry,
                        kind,
                    },
                );
                self.arm_ack_timer(ctx, report.flow_id, report.completed_at);
                true
            }
            Err(_) => false,
        }
    }

    /// Hand update `seq`'s payload to `consumer`'s lane: launch now if the
    /// lane is free, else queue it (collapsing older queued versions).
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &mut self,
        ctx: &mut TaskCtx<'_>,
        seq: u64,
        consumer: String,
        bytes: Payload,
        crcs: Option<Arc<Vec<u32>>>,
        kind: PayloadKind,
        capture: &mut Option<(f64, Duration, Duration)>,
        ready_at: SimInstant,
    ) {
        let update = &self.updates[&seq];
        let model = update.record.name.clone();
        let chunk_bytes = update.chunk_bytes;
        let busy = self
            .lanes
            .get(&(consumer.clone(), model.clone()))
            .and_then(|lane| lane.in_flight)
            .is_some();
        if !busy {
            let mut opts = ChunkedSend::new(chunk_bytes).at(ready_at);
            if let Some((bw, fixed, once)) = *capture {
                opts = opts.with_capture(bw, fixed, once);
            }
            if self.launch_flow(ctx, seq, consumer.clone(), bytes, crcs, kind, &opts, false) {
                // The snapshot happens once; further flows re-send the
                // already captured chunks.
                *capture = None;
                self.lane_mut(&consumer, &model).in_flight = Some(seq);
            } else if let Some(update) = self.updates.get_mut(&seq) {
                update.remaining -= 1;
            }
        } else {
            debug_assert!(self.coalesce, "a lane can only be busy when coalescing");
            let dropped = self.lane_mut(&consumer, &model).queue.push(
                seq,
                QueuedSend {
                    seq,
                    bytes,
                    crcs,
                    kind,
                    ready_at,
                },
            );
            for (_, stale) in dropped {
                self.supersede(&consumer, &model, stale.seq, ready_at);
            }
        }
    }

    /// Update `seq` will never reach `consumer`: a newer version collapsed
    /// it out of the lane's queue. Count it (aggregate, per consumer, and
    /// as a trace instant) and resolve the consumer's slot in the update.
    fn supersede(&mut self, consumer: &str, model: &str, seq: u64, at: SimInstant) {
        self.counters.updates_superseded.inc();
        if let Some(lane) = self.lanes.get(&(consumer.to_string(), model.to_string())) {
            lane.superseded.inc();
        }
        let telemetry = &self.viper.shared.config.telemetry;
        if telemetry.is_enabled() {
            if let Some(update) = self.updates.get(&seq) {
                telemetry.instant_at(
                    "producer",
                    "update_superseded",
                    &update.track,
                    at.as_nanos(),
                    &[
                        ("consumer", consumer.into()),
                        ("version", update.record.version.into()),
                    ],
                );
            }
        }
        if let Some(update) = self.updates.get_mut(&seq) {
            update.remaining -= 1;
        }
        self.finish_if_done(seq);
    }

    /// A flow reached a terminal state (or never launched): free its lane
    /// and launch the next queued send, no earlier than `at`.
    fn release_lane(&mut self, ctx: &mut TaskCtx<'_>, consumer: &str, model: &str, at: SimInstant) {
        let key = (consumer.to_string(), model.to_string());
        let Some(lane) = self.lanes.get_mut(&key) else {
            return;
        };
        lane.in_flight = None;
        while let Some((_, queued)) = self.lanes.get_mut(&key).and_then(|lane| lane.queue.pop()) {
            let Some(chunk_bytes) = self.updates.get(&queued.seq).map(|u| u.chunk_bytes) else {
                debug_assert!(false, "queued send outlived its update");
                continue;
            };
            let start = queued.ready_at.max(at);
            let opts = ChunkedSend::new(chunk_bytes).at(start);
            if self.launch_flow(
                ctx,
                queued.seq,
                consumer.to_string(),
                queued.bytes,
                queued.crcs,
                queued.kind,
                &opts,
                false,
            ) {
                self.lanes.get_mut(&key).expect("lane exists").in_flight = Some(queued.seq);
                break;
            }
            // Consumer vanished: resolve its slot and keep draining.
            if let Some(update) = self.updates.get_mut(&queued.seq) {
                update.remaining -= 1;
            }
            self.finish_if_done(queued.seq);
        }
        self.refresh_queue_gauge();
    }

    /// Abort a flow whose consumer vanished mid-delivery (send error):
    /// remove it entirely — there is no peer left to feed its machine.
    fn abort_flow(&mut self, ctx: &mut TaskCtx<'_>, flow_id: u64, at: SimInstant) {
        ctx.cancel_timer(flow_id);
        if let Some(flow) = self.flows.remove(&flow_id) {
            // A vanished relay root still leaves a live subtree behind it:
            // re-parent and deliver to the orphans directly.
            if self
                .updates
                .get(&flow.seq)
                .is_some_and(|u| u.groups.contains_key(&flow.consumer))
            {
                self.relay_fallback(ctx, flow.seq, &flow.consumer, at);
            }
            let model = self
                .updates
                .get(&flow.seq)
                .map(|u| u.record.name.clone())
                .unwrap_or_default();
            if let Some(update) = self.updates.get_mut(&flow.seq) {
                update.remaining -= 1;
            }
            self.release_lane(ctx, &flow.consumer, &model, at);
            self.finish_if_done(flow.seq);
        }
    }

    /// A relay root failed (exhausted retries or vanished) while `seq`
    /// still owed its subtree the update: record the re-parent in the
    /// topology and launch direct full flows to every stranded member.
    /// Counted — this is the degraded path, not the design point.
    fn relay_fallback(&mut self, ctx: &mut TaskCtx<'_>, seq: u64, root: &str, at: SimInstant) {
        let Some(update) = self.updates.get_mut(&seq) else {
            return;
        };
        let Some(members) = update.groups.get(root).cloned() else {
            return;
        };
        let stranded: Vec<String> = members
            .into_iter()
            .filter(|m| m != root && !update.escalated.contains(m))
            .collect();
        let chunk_bytes = update.chunk_bytes;
        let track = update.track.clone();
        let (full, full_crcs) = update.full_framed(&self.counters);
        for member in &stranded {
            update.escalated.insert(member.clone());
        }
        self.counters.reparent_events.inc();
        self.viper.shared.distribution.note_failed(root);
        let telemetry = &self.viper.shared.config.telemetry;
        if telemetry.is_enabled() {
            telemetry.instant_at(
                "producer",
                "reparent",
                &track,
                at.as_nanos(),
                &[("root", root.into()), ("stranded", stranded.len().into())],
            );
        }
        for member in stranded {
            if let Some(update) = self.updates.get_mut(&seq) {
                update.remaining += 1;
            }
            if !self.launch_flow(
                ctx,
                seq,
                member,
                full.clone(),
                Some(Arc::clone(&full_crcs)),
                PayloadKind::Full,
                &ChunkedSend::new(chunk_bytes).at(at),
                true,
            ) {
                if let Some(update) = self.updates.get_mut(&seq) {
                    update.remaining -= 1;
                }
            }
        }
    }

    /// A relay escalated a subtree member it could not serve (`Miss`):
    /// the member's delta base is unusable from the relayed bytes, or the
    /// relay exhausted its own retry budget toward it. Deliver a direct
    /// framed full from the producer and exclude the member from its
    /// root's group resolution.
    fn handle_miss(
        &mut self,
        ctx: &mut TaskCtx<'_>,
        from: &str,
        flow_id: u64,
        member: String,
        at: SimInstant,
    ) {
        let Some(flow) = self.flows.get(&flow_id) else {
            self.counters.stale_feedback.inc();
            return;
        };
        if flow.consumer != from {
            self.counters.stale_feedback.inc();
            return;
        }
        let seq = flow.seq;
        let root = flow.consumer.clone();
        let Some(update) = self.updates.get_mut(&seq) else {
            return;
        };
        let in_group = update
            .groups
            .get(&root)
            .is_some_and(|members| members.contains(&member));
        if !in_group || !update.escalated.insert(member.clone()) {
            // Unknown member, or one already escalated: nothing to do.
            self.counters.stale_feedback.inc();
            return;
        }
        let chunk_bytes = update.chunk_bytes;
        let track = update.track.clone();
        let (full, full_crcs) = update.full_framed(&self.counters);
        let model = update.record.name.clone();
        update.remaining += 1;
        self.codec.forget(&member, &model);
        self.counters.delta_fallbacks.inc();
        let telemetry = &self.viper.shared.config.telemetry;
        if telemetry.is_enabled() {
            telemetry.instant_at(
                "producer",
                "relay_miss",
                &track,
                at.as_nanos(),
                &[("member", member.as_str().into()), ("root", from.into())],
            );
        }
        if !self.launch_flow(
            ctx,
            seq,
            member,
            full,
            Some(full_crcs),
            PayloadKind::Full,
            &ChunkedSend::new(chunk_bytes).at(at),
            true,
        ) {
            if let Some(update) = self.updates.get_mut(&seq) {
                update.remaining -= 1;
            }
            self.finish_if_done(seq);
        }
    }

    /// If every consumer slot of update `seq` is resolved, finish it: send
    /// the job reply (non-coalescing), or run the deferred durable
    /// fallback (coalescing), and drop its flow records.
    fn finish_if_done(&mut self, seq: u64) {
        if self.updates.get(&seq).is_none_or(|u| u.remaining != 0) {
            return;
        }
        let update = self.updates.remove(&seq).expect("checked above");
        self.flows.retain(|_, flow| flow.seq != seq);
        if let Some(reply) = &update.reply {
            let _ = reply.send(DeliveryDone {
                delivered: update.delivered,
                fall_back: update.fall_back,
                frontier: update.frontier,
            });
        } else if update.fall_back {
            self.durable_fallback(&update);
        }
        if self.updates.is_empty() {
            for waiter in self.waiters.drain(..) {
                let _ = waiter.send(());
            }
        }
    }

    /// The coalescing path's deferred graceful degradation: the wire gave
    /// up on at least one consumer (with nothing newer queued behind it),
    /// so make the version durable, relocate it, and re-publish the
    /// notification pointing at the PFS copy — consumers recover via the
    /// repository pull path.
    fn durable_fallback(&self, update: &UpdateState) {
        let shared = &self.viper.shared;
        let telemetry = &shared.config.telemetry;
        let record = &update.record;
        let t0 = telemetry.now_ns();
        let pfs_path = format!("pfs/{}/v{}", record.name, record.version);
        if shared
            .pfs
            .write(&pfs_path, update.payload.clone(), record.ntensors)
            .is_ok()
        {
            shared
                .db
                .relocate(&record.name, record.version, Tier::Pfs.name(), &pfs_path);
            self.counters.pfs_fallbacks.inc();
            let mut notify = record.clone();
            notify.location = Tier::Pfs.name().to_string();
            notify.path = pfs_path;
            charge_at(
                &shared.clock,
                update.frontier,
                shared.config.profile.notify_latency,
            );
            shared.bus.publish(UPDATE_TOPIC, notify);
            shared.reactor.wake_all();
        }
        telemetry.complete(
            "producer",
            "pfs_fallback",
            &update.track,
            t0,
            telemetry.now_ns(),
            &[("version", record.version.into())],
        );
    }

    /// Apply a [`FlowAction`] produced by a flow's state machine. `at` is
    /// the causal instant the triggering event happened: the feedback
    /// frame's arrival for mail, the deadline for a timer fire.
    fn handle_action(
        &mut self,
        ctx: &mut TaskCtx<'_>,
        flow_id: u64,
        action: FlowAction,
        at: SimInstant,
    ) {
        let shared = Arc::clone(&self.viper.shared);
        let telemetry = &shared.config.telemetry;
        let retry = shared.config.retry;
        match action {
            FlowAction::None => {}
            FlowAction::DroppedStale => {
                self.counters.stale_feedback.inc();
            }
            FlowAction::Complete => {
                ctx.cancel_timer(flow_id);
                let flow = &self.flows[&flow_id];
                let seq = flow.seq;
                let consumer = flow.consumer.clone();
                let update = self
                    .updates
                    .get_mut(&seq)
                    .expect("flow belongs to an update");
                let model = update.record.name.clone();
                if let Some(members) = update.groups.get(&consumer).cloned() {
                    // A relay root's group ACK: its entire subtree has
                    // installed the update. One round-trip resolves (and
                    // base-tracks) every member the producer did not have
                    // to escalate to a direct send.
                    self.counters.group_acks.inc();
                    let mut resolved = 0;
                    for member in &members {
                        if update.escalated.contains(member) {
                            continue;
                        }
                        self.codec
                            .note_acked(member, &model, update.record.iteration);
                        resolved += 1;
                    }
                    update.delivered += resolved;
                    if telemetry.is_enabled() {
                        telemetry.instant_at(
                            "producer",
                            "group_ack",
                            &update.track,
                            at.as_nanos(),
                            &[
                                ("root", consumer.as_str().into()),
                                ("members", resolved.into()),
                            ],
                        );
                    }
                } else {
                    self.codec
                        .note_acked(&consumer, &model, update.record.iteration);
                    update.delivered += 1;
                }
                update.frontier = update.frontier.max(at);
                update.remaining -= 1;
                self.release_lane(ctx, &consumer, &model, at);
                self.finish_if_done(seq);
            }
            FlowAction::NeedFull => {
                ctx.cancel_timer(flow_id);
                let flow = &self.flows[&flow_id];
                let seq = flow.seq;
                let consumer = flow.consumer.clone();
                let was_full_retry = flow.full_retry;
                let kind = flow.kind;
                let update = self
                    .updates
                    .get_mut(&seq)
                    .expect("flow belongs to an update");
                let model = update.record.name.clone();
                update.frontier = update.frontier.max(at);
                if was_full_retry {
                    // A full can't be rejected for a missing base; treat a
                    // repeat NeedFull as a failed delivery.
                    update.remaining -= 1;
                    self.release_lane(ctx, &consumer, &model, at);
                    self.finish_if_done(seq);
                    return;
                }
                // The consumer lost the base this delta applies to
                // (restart, missed flow): reset its tracking and re-send
                // the update as a full on a fresh flow. The lane stays
                // held by this update.
                let chunk_bytes = update.chunk_bytes;
                let track = update.track.clone();
                let (full, full_crcs) = update.full_framed(&self.counters);
                self.codec.forget(&consumer, &model);
                self.counters.delta_fallbacks.inc();
                if telemetry.is_enabled() {
                    telemetry.instant_at(
                        "producer",
                        "delta_rejected",
                        &track,
                        at.as_nanos(),
                        &[
                            ("consumer", consumer.as_str().into()),
                            ("kind", kind.label().into()),
                        ],
                    );
                }
                if !self.launch_flow(
                    ctx,
                    seq,
                    consumer.clone(),
                    full,
                    Some(full_crcs),
                    PayloadKind::Full,
                    &ChunkedSend::new(chunk_bytes).at(at),
                    true,
                ) {
                    if let Some(update) = self.updates.get_mut(&seq) {
                        update.remaining -= 1;
                    }
                    self.release_lane(ctx, &consumer, &model, at);
                }
                self.finish_if_done(seq);
            }
            FlowAction::Retransmit {
                generation,
                missing,
                attempt,
            } => {
                self.counters.retransmits.inc();
                let flow = &self.flows[&flow_id];
                let seq = flow.seq;
                let consumer = flow.consumer.clone();
                let update = &self.updates[&seq];
                let model = update.record.name.clone();
                let missing: Vec<u32> = if missing.is_empty() {
                    // Blind resend: no NACK narrowed the loss down.
                    (0..flow.num_chunks).collect()
                } else {
                    missing
                };
                // Backpressure: a congested lane (updates queuing behind
                // this flow's consumer) backs off harder, ceding the wire
                // to healthier consumers.
                let backlog = self
                    .lanes
                    .get(&(consumer.clone(), model.clone()))
                    .map_or(0, |lane| lane.queue.len());
                let end = charge_at(
                    &shared.clock,
                    at,
                    retry.backoff_with_pressure(attempt, backlog),
                );
                telemetry.complete(
                    "producer",
                    "backoff",
                    &update.track,
                    at.as_nanos(),
                    end.as_nanos(),
                    &[("attempt", attempt.into()), ("backlog", backlog.into())],
                );
                // Announce the round before its chunks: the fabric preserves
                // per-sender order, so the consumer learns the generation
                // first and stamps it into all further feedback.
                let round = Control::Round {
                    flow_id,
                    generation,
                };
                if self
                    .endpoint
                    .send_control_at(&consumer, &update.tag, &round, update.link, end)
                    .is_err()
                {
                    self.abort_flow(ctx, flow_id, at);
                    return;
                }
                let flow = &self.flows[&flow_id];
                let update = &self.updates[&seq];
                match self.endpoint.retransmit_chunks_at(
                    &consumer,
                    &update.tag,
                    &flow.bytes,
                    update.link,
                    flow_id,
                    update.chunk_bytes,
                    &missing,
                    flow.crcs.as_deref().map(Vec::as_slice),
                    end,
                ) {
                    Ok(lane_free) => {
                        telemetry.complete(
                            "producer",
                            "retransmit_round",
                            &update.track,
                            end.as_nanos(),
                            lane_free.as_nanos(),
                            &[
                                ("attempt", attempt.into()),
                                ("missing", missing.len().into()),
                            ],
                        );
                        self.arm_ack_timer(ctx, flow_id, lane_free);
                    }
                    Err(_) => self.abort_flow(ctx, flow_id, at),
                }
            }
            FlowAction::Exhausted { .. } => {
                ctx.cancel_timer(flow_id);
                self.counters.exhausted.inc();
                let flow = &self.flows[&flow_id];
                let seq = flow.seq;
                let consumer = flow.consumer.clone();
                let update = &self.updates[&seq];
                let model = update.record.name.clone();
                let track = update.track.clone();
                self.codec.forget(&consumer, &model);
                if telemetry.is_enabled() {
                    telemetry.instant_at(
                        "producer",
                        "retries_exhausted",
                        &track,
                        at.as_nanos(),
                        &[("consumer", consumer.as_str().into())],
                    );
                }
                // A dead relay root strands its whole subtree: re-parent
                // the topology and deliver to the orphans directly. The
                // root itself still takes the durable-fallback path below.
                if self.updates[&seq].groups.contains_key(&consumer) {
                    self.relay_fallback(ctx, seq, &consumer, at);
                }
                // If a newer version is already queued behind this lane it
                // supersedes the failed one for this consumer: skip the
                // durable fallback and let the newer flow launch instead.
                let newer_queued = self
                    .lanes
                    .get(&(consumer.clone(), model.clone()))
                    .is_some_and(|lane| !lane.queue.is_empty());
                let update = self
                    .updates
                    .get_mut(&seq)
                    .expect("flow belongs to an update");
                if !newer_queued {
                    update.fall_back = true;
                }
                update.frontier = update.frontier.max(at);
                update.remaining -= 1;
                self.release_lane(ctx, &consumer, &model, at);
                self.finish_if_done(seq);
            }
        }
    }

    /// Feed one decoded control frame to its flow's state machine.
    fn on_control(&mut self, from: &str, control: Control) -> Option<(u64, FlowAction)> {
        let flow_id = control.flow_id();
        let event = match control {
            Control::Ack { generation, .. } => FlowEvent::Feedback {
                generation,
                kind: FeedbackKind::Ack,
            },
            Control::NeedFull { generation, .. } => FlowEvent::Feedback {
                generation,
                kind: FeedbackKind::NeedFull,
            },
            Control::Nack {
                generation,
                missing,
                ..
            } => FlowEvent::Feedback {
                generation,
                kind: FeedbackKind::Nack { missing },
            },
            // `Round` is a sender-side frame; one arriving here is garbage.
            // `Miss` is handled before the state machine (`handle_miss`).
            Control::Round { .. } | Control::Miss { .. } => return None,
        };
        let Some(flow) = self.flows.get_mut(&flow_id) else {
            // Feedback for no known flow: a complaint about a superseded
            // or finished delivery (e.g. a reap-NACK racing completion).
            self.counters.stale_feedback.inc();
            return None;
        };
        if flow.consumer != from {
            self.counters.stale_feedback.inc();
            return None;
        }
        Some((flow_id, flow.machine.on_event(event)))
    }
}

impl ReactorTask for DeliveryTask {
    fn on_mail(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(msg) = self.endpoint.try_recv() {
            if msg.kind != MessageKind::Control {
                continue;
            }
            // Control frames are always unframed; anything that fails to
            // decode is a mis-tagged chunk and is dropped here.
            let Some(control) = Control::decode(msg.payload.as_contiguous().unwrap_or(&[])) else {
                continue;
            };
            // A relay `Miss` is escalation about a *subtree member*, not
            // feedback about the root's flow health: it must never feed
            // the root flow's state machine.
            if let Control::Miss {
                flow_id, member, ..
            } = control
            {
                self.handle_miss(ctx, &msg.from, flow_id, member, msg.arrived_at);
                continue;
            }
            if let Some((flow_id, action)) = self.on_control(&msg.from, control) {
                self.handle_action(ctx, flow_id, action, msg.arrived_at);
            }
        }
    }

    fn on_timer(&mut self, token: u64, deadline: SimInstant, ctx: &mut TaskCtx<'_>) {
        // Ack timers fire only at reactor quiescence: every surviving chunk
        // and feedback frame has been processed, so silence here means the
        // virtual `ack_timeout` genuinely elapsed with nothing heard. The
        // wait itself charges nothing — exactly like the old wall-clock
        // `recv_timeout`, which parked a thread without touching the clock.
        let Some(flow) = self.flows.get_mut(&token) else {
            return;
        };
        let action = flow.machine.on_event(FlowEvent::AckTimeout);
        self.handle_action(ctx, token, action, deadline);
    }

    fn on_job(&mut self, job: Box<dyn Any + Send>, ctx: &mut TaskCtx<'_>) {
        let job = match job.downcast::<DeliveryJob>() {
            Ok(job) => *job,
            Err(other) => {
                if let Ok(barrier) = other.downcast::<DrainBarrier>() {
                    if self.updates.is_empty() {
                        let _ = barrier.reply.send(());
                    } else {
                        self.waiters.push(barrier.reply);
                    }
                }
                return;
            }
        };
        debug_assert!(
            self.coalesce || self.updates.is_empty(),
            "one reliable fan-out per producer at a time without coalescing"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let admitted = job.consumers.len();
        // Under coalescing the save path already returned at submit (it
        // never waits on this channel — the receiver is gone by now, so
        // the send is a best-effort no-op kept for symmetry); terminal
        // outcomes surface through counters and the deferred fallback.
        let reply = if self.coalesce {
            let _ = job.reply.send(DeliveryDone {
                delivered: admitted,
                fall_back: false,
                frontier: job.frontier,
            });
            None
        } else {
            Some(job.reply)
        };
        self.updates.insert(
            seq,
            UpdateState {
                tag: job.tag,
                link: job.link,
                chunk_bytes: job.chunk_bytes,
                payload: job.payload,
                framed_full: job.framed_full,
                record: job.record,
                track: job.track,
                remaining: admitted,
                delivered: 0,
                fall_back: false,
                frontier: job.frontier,
                groups: job.groups,
                escalated: HashSet::new(),
                reply,
            },
        );
        let mut capture = job.capture;
        for (consumer, wire_payload) in job.consumers {
            self.admit(
                ctx,
                seq,
                consumer,
                wire_payload.bytes,
                wire_payload.crcs,
                wire_payload.kind,
                &mut capture,
                job.frontier,
            );
        }
        self.refresh_queue_gauge();
        self.finish_if_done(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt(iteration: u64) -> Arc<Checkpoint> {
        Arc::new(Checkpoint::new(
            "m",
            iteration,
            vec![(
                "w".into(),
                viper_tensor::Tensor::full(&[4], iteration as f32),
            )],
        ))
    }

    fn active_codec() -> PayloadCodec {
        PayloadCodec::new(&ViperConfig::default().with_delta())
    }

    #[test]
    fn inactive_codec_tracks_nothing() {
        let codec = PayloadCodec::new(&ViperConfig::default());
        assert!(!codec.active());
        codec.retain(&ckpt(1));
        codec.note_acked("c", "m", 1);
        assert_eq!(codec.newest_retained("m"), None);
        assert!(codec.base_for("c", "m").is_none());
    }

    #[test]
    fn base_requires_ack_and_retention() {
        let codec = active_codec();
        codec.retain(&ckpt(1));
        // Retained but never acknowledged: no delta base.
        assert!(codec.base_for("c", "m").is_none());
        codec.note_acked("c", "m", 1);
        assert_eq!(codec.base_for("c", "m").unwrap().iteration, 1);
        // Another consumer's ack is tracked independently.
        assert!(codec.base_for("other", "m").is_none());
        codec.forget("c", "m");
        assert!(codec.base_for("c", "m").is_none());
    }

    #[test]
    fn retention_prunes_to_version_budget() {
        let mut config = ViperConfig::default().with_delta();
        config.keep_versions = 2;
        let codec = PayloadCodec::new(&config);
        for i in 1..=5 {
            codec.retain(&ckpt(i));
        }
        assert_eq!(codec.newest_retained("m"), Some(5));
        codec.note_acked("c", "m", 3);
        // Iteration 3 was pruned (only 4 and 5 retained): full fallback.
        assert!(codec.base_for("c", "m").is_none());
        codec.note_acked("c", "m", 4);
        assert!(codec.base_for("c", "m").is_some());
    }

    #[test]
    fn wire_cache_evicts_pruned_bases() {
        let mut config = ViperConfig::default().with_delta();
        config.keep_versions = 2;
        let codec = PayloadCodec::new(&config);
        codec.retain(&ckpt(1));
        codec.retain(&ckpt(2));
        // Memoize deltas of update 3 against both retained bases (and a
        // failed diff against base 1, which memoizes as None).
        let body = (Payload::from(vec![9u8; 8]), Arc::new(vec![0u32]));
        assert!(codec
            .delta_cached("m", 3, 1, || Some(body.clone()))
            .is_some());
        assert!(codec.delta_cached("m", 3, 2, || None).is_none());
        assert_eq!(codec.cached_delta_bases("m"), vec![1, 2]);
        // Retaining 3 prunes base 1 (budget 2 keeps {2, 3}): its cached
        // delta — including the memoized failure — must go with it.
        codec.retain(&ckpt(3));
        assert_eq!(codec.cached_delta_bases("m"), vec![2]);
        // The memo is target-keyed: a newer update resets it entirely.
        assert!(codec.delta_cached("m", 4, 2, || None).is_none());
        assert_eq!(codec.cached_delta_bases("m"), vec![2]);
        assert!(codec.cached_full("m", 3).is_none());
    }

    #[test]
    fn wire_cache_full_is_target_keyed() {
        let codec = active_codec();
        let counters = DeliveryCounters::new(&Telemetry::disabled(), "p");
        let payload = Payload::from(vec![7u8; 16]);
        let (framed, crcs) = codec.full_framed_cached("m", 1, &payload, 8, &counters);
        // The streamed framing is byte-identical to the legacy copy path,
        // and its chunk CRCs match fresh CRCs over the framed slices.
        let legacy = wire::frame(PayloadKind::Full, &payload);
        assert_eq!(framed.as_slice(), &legacy[..]);
        assert_eq!(crcs.len(), legacy.len().div_ceil(8));
        for (i, chunk) in legacy.chunks(8).enumerate() {
            assert_eq!(crcs[i], viper_formats::crc32(chunk));
        }
        assert_eq!(codec.cached_full("m", 1).unwrap().0.len(), framed.len());
        assert_eq!(counters.payload_allocs.get(), 1);
        // Same target: memoized, no second framing.
        codec.full_framed_cached("m", 1, &payload, 8, &counters);
        assert_eq!(counters.payload_allocs.get(), 1);
        // New target: the stale full is dropped, a fresh one is framed.
        assert!(codec.cached_full("m", 2).is_none());
        codec.full_framed_cached("m", 2, &payload, 8, &counters);
        assert_eq!(counters.payload_allocs.get(), 2);
        assert!(codec.cached_full("m", 1).is_none());
    }
}
