//! Framework configuration.

use std::time::Duration;
use viper_formats::{CheckpointFormat, H5Lite, ViperFormat};
use viper_hw::{CaptureMode, MachineProfile, Route, TransferStrategy};

/// How consumers learn about new model versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// Viper's push notifications through the pub/sub broker.
    Push,
    /// The baseline serving systems' approach (TensorFlow Serving, NVIDIA
    /// Triton): poll the metadata repository at a fixed interval. The
    /// interval is charged to the virtual clock as discovery delay.
    Poll {
        /// Poll interval (the paper cites a >= 1 ms floor for Triton).
        interval: Duration,
    },
}

/// Which serialization format checkpoints use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatKind {
    /// The lean Viper binary format.
    Viper,
    /// The h5py-style baseline format (for baseline measurements).
    H5,
}

impl FormatKind {
    /// Instantiate the format.
    pub fn build(self) -> Box<dyn CheckpointFormat> {
        match self {
            FormatKind::Viper => Box::new(ViperFormat),
            FormatKind::H5 => Box::new(H5Lite),
        }
    }
}

/// Configuration of a Viper deployment.
#[derive(Debug, Clone)]
pub struct ViperConfig {
    /// Simulated machine characteristics.
    pub profile: MachineProfile,
    /// How checkpoints travel from producer to consumer.
    pub strategy: TransferStrategy,
    /// Checkpoint serialization format.
    pub format: FormatKind,
    /// Flush every checkpoint to the PFS in the background for fault
    /// tolerance (§4.4). Memory routes only (the PFS route already lands
    /// there).
    pub flush_to_pfs: bool,
    /// How many versions of each model to keep in the metadata DB.
    pub keep_versions: usize,
    /// Let the Transfer Selector degrade the route down the tier hierarchy
    /// (GPU → host → PFS) when the configured staging tier is out of
    /// memory, instead of failing the save (Fig. 7's strategy selection).
    pub tier_fallback: bool,
    /// How consumers discover updates (push vs baseline polling).
    pub discovery: DiscoveryMode,
    /// Deliver memory-route checkpoints as a pipelined chunked flow: the
    /// payload is split into `chunk_bytes` chunks, each its own message, so
    /// capture, wire, and apply of successive chunks overlap in virtual
    /// time. The PFS route and the default monolithic path are unaffected.
    pub chunked_transfer: bool,
    /// Chunk size for the pipelined path (bytes of original payload per
    /// chunk). Small chunks pay per-chunk fixed costs; the ~64 MiB default
    /// keeps those under 1% on the Polaris profile.
    pub chunk_bytes: u64,
    /// Persist the PFS tier's objects as files under this directory,
    /// surviving process restarts (see [`crate::Viper::recover_catalog`]).
    pub pfs_dir: Option<std::path::PathBuf>,
    /// Deterministic fault-injection plan installed on the fabric at
    /// deployment construction (drops, duplicates, reorders, bit flips).
    /// `None` — the default — leaves the fabric untouched.
    pub fault_plan: Option<viper_net::FaultPlan>,
    /// Reliable delivery for memory routes: per-chunk CRC verification,
    /// receiver NACK/ACK feedback, and sender retransmission with backoff
    /// under [`ViperConfig::retry`]. When the retry budget is exhausted the
    /// producer degrades the update to the durable PFS route. Off by
    /// default: the fault-free fast path is byte- and timing-identical to a
    /// build without the reliability layer.
    pub reliable_delivery: bool,
    /// Encode memory-route updates as incremental [`viper_formats::delta`]
    /// checkpoints when the receiving consumer has acknowledged a retained
    /// base version, falling back to a full checkpoint for fresh consumers,
    /// stale bases, and the durable PFS paths (which always store full
    /// encodings). Wire payloads carry an explicit payload-kind envelope
    /// ([`viper_formats::wire`]) so the receiver dispatches by header, never
    /// by sniffing. Implies [`ViperConfig::reliable_delivery`]: a base is
    /// "acknowledged" only through the ACK channel, and the `NeedFull`
    /// recovery reply rides the same control path.
    pub delta_transfer: bool,
    /// Retransmission budget and pacing for reliable delivery (also paces
    /// the consumer's stale-flow reaping, even when `reliable_delivery` is
    /// off, so lost flows cannot pin reassembly buffers forever).
    pub retry: viper_net::RetryPolicy,
    /// Collapse-to-latest coalescing on the reliable delivery path: each
    /// consumer gets a bounded outbound queue
    /// ([`ViperConfig::coalesce_queue_depth`]); while an update is in
    /// flight to a consumer, newer versions queue behind it and a full
    /// queue drops the *oldest* pending version (counted per consumer as
    /// `updates_superseded`, with a `queue_depth` gauge). Saves stop
    /// blocking on the slowest consumer — the producer's pipeline runs
    /// ahead while congested consumers skip straight to the newest
    /// version. Off by default: the blocking path stays byte- and
    /// timing-identical to previous builds. Requires
    /// [`ViperConfig::reliable_delivery`] (enabled by
    /// [`ViperConfig::with_coalescing`]).
    pub coalesce_updates: bool,
    /// Bound on each consumer's pending outbound queue when
    /// [`ViperConfig::coalesce_updates`] is on (clamped to at least 1).
    /// Depth 1 — the default — is pure collapse-to-latest: one update in
    /// flight, one pending, everything between superseded.
    pub coalesce_queue_depth: usize,
    /// Distribute reliable memory-route updates through a relay tree
    /// instead of producer point-to-point sends: consumers are organized
    /// into a bounded-fan-out tree ([`viper_net::Topology`]), the producer
    /// ships each update once per tree root, and every relay consumer
    /// re-serves the already-framed chunk bytes to its children after
    /// installing the update itself. The producer sees one group-level ACK
    /// per subtree (sent when the whole subtree has installed) instead of
    /// one round-trip per consumer, so wire time and retransmit state on
    /// the producer grow with the *fan-out*, not the fleet size, and
    /// propagation makespan grows with tree depth (~`log n`). Relay
    /// misses (a subtree member that cannot use the relayed payload) and
    /// relay failures degrade to direct producer sends, counted by
    /// `group_acks`/`reparent_events`. Off by default; requires
    /// [`ViperConfig::reliable_delivery`] (enabled by
    /// [`ViperConfig::with_relay_tree`]).
    pub relay_tree: bool,
    /// Fan-out bound of the relay tree (children per node, clamped to at
    /// least 1). The default of 4 keeps subtree serve time per level low
    /// while reaching 100k consumers in 9 levels.
    pub relay_fanout: usize,
    /// Worker-thread budget for the delivery reactor's CRC pool. The
    /// reactor itself is always one scheduler thread; this only sizes the
    /// pool that checksums incoming chunk batches. `1` (the default) means
    /// inline verification with no extra threads. Any value produces
    /// bit-identical virtual timings and traces — results are merged
    /// positionally, never by completion order.
    pub reactor_threads: usize,
    /// Telemetry handle shared by every component of the deployment
    /// (producers, consumers, fabric, pub/sub broker, predictor calls).
    /// Disabled by default — the disabled path records nothing and never
    /// touches the virtual clock, so benchmark makespans are bit-identical
    /// with or without it. [`crate::Viper::new`] binds this handle to the
    /// deployment's virtual clock, so timestamps land in virtual time.
    pub telemetry: viper_telemetry::Telemetry,
}

impl Default for ViperConfig {
    fn default() -> Self {
        ViperConfig {
            profile: MachineProfile::polaris(),
            strategy: TransferStrategy {
                route: Route::GpuToGpu,
                mode: CaptureMode::Async,
            },
            format: FormatKind::Viper,
            flush_to_pfs: true,
            keep_versions: 16,
            tier_fallback: true,
            discovery: DiscoveryMode::Push,
            chunked_transfer: false,
            chunk_bytes: 64 * 1024 * 1024,
            pfs_dir: None,
            fault_plan: None,
            reliable_delivery: false,
            delta_transfer: false,
            retry: viper_net::RetryPolicy::default(),
            coalesce_updates: false,
            coalesce_queue_depth: 1,
            relay_tree: false,
            relay_fanout: 4,
            reactor_threads: 1,
            telemetry: viper_telemetry::Telemetry::disabled(),
        }
    }
}

impl ViperConfig {
    /// The traditional baseline: h5py files through the PFS, discovered by
    /// polling (as TensorFlow Serving / Triton do).
    pub fn h5py_baseline() -> Self {
        ViperConfig {
            strategy: TransferStrategy {
                route: Route::PfsStaging,
                mode: CaptureMode::Sync,
            },
            format: FormatKind::H5,
            flush_to_pfs: false,
            discovery: DiscoveryMode::Poll {
                interval: Duration::from_millis(1),
            },
            ..Self::default()
        }
    }

    /// Viper through the PFS (lean format, same tier as the baseline).
    pub fn viper_pfs() -> Self {
        ViperConfig {
            strategy: TransferStrategy {
                route: Route::PfsStaging,
                mode: CaptureMode::Sync,
            },
            flush_to_pfs: false,
            ..Self::default()
        }
    }

    /// Set the transfer strategy (builder style).
    pub fn with_strategy(mut self, route: Route, mode: CaptureMode) -> Self {
        self.strategy = TransferStrategy { route, mode };
        self
    }

    /// Enable the pipelined chunked transfer path with the given chunk size
    /// (builder style).
    pub fn with_chunked(mut self, chunk_bytes: u64) -> Self {
        self.chunked_transfer = true;
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Install a fault-injection plan AND enable reliable delivery (builder
    /// style) — injecting faults without the recovery machinery would just
    /// lose updates.
    pub fn with_faults(mut self, plan: viper_net::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self.reliable_delivery = true;
        self
    }

    /// Enable reliable delivery without injecting faults (builder style):
    /// CRC verification and ACK-gated sends on an otherwise clean fabric.
    pub fn with_reliable(mut self) -> Self {
        self.reliable_delivery = true;
        self
    }

    /// Enable delta transfer AND reliable delivery (builder style) — the
    /// per-consumer base tracking that makes a delta safe to send only
    /// exists on the ACK-gated path.
    pub fn with_delta(mut self) -> Self {
        self.delta_transfer = true;
        self.reliable_delivery = true;
        self
    }

    /// Set the retransmission policy (builder style).
    pub fn with_retry(mut self, retry: viper_net::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable collapse-to-latest coalescing AND reliable delivery (builder
    /// style) — the per-consumer queues live in the reliable delivery
    /// reactor; the unreliable path has no per-consumer state to bound.
    pub fn with_coalescing(mut self) -> Self {
        self.coalesce_updates = true;
        self.reliable_delivery = true;
        self
    }

    /// Enable relay-tree fan-out AND reliable delivery (builder style) —
    /// relays re-serve flows and group-ACK their subtree over the same
    /// control channel the reliability layer provides. `fanout` bounds
    /// the children per node (clamped to at least 1).
    pub fn with_relay_tree(mut self, fanout: usize) -> Self {
        self.relay_tree = true;
        self.relay_fanout = fanout.max(1);
        self.reliable_delivery = true;
        self
    }

    /// Set the delivery reactor's CRC worker budget (builder style).
    /// Clamped to at least 1 at deployment construction.
    pub fn with_reactor_threads(mut self, threads: usize) -> Self {
        self.reactor_threads = threads;
        self
    }

    /// Install a telemetry handle (builder style). Pass
    /// [`viper_telemetry::Telemetry::enabled`] to capture traces; the
    /// deployment binds the handle to its virtual clock on construction.
    pub fn with_telemetry(mut self, telemetry: viper_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_memory_first_async_push() {
        let c = ViperConfig::default();
        assert_eq!(c.strategy.route, Route::GpuToGpu);
        assert_eq!(c.strategy.mode, CaptureMode::Async);
        assert_eq!(c.format, FormatKind::Viper);
        assert!(c.flush_to_pfs);
        assert!(c.tier_fallback);
        assert_eq!(c.discovery, DiscoveryMode::Push);
        assert!(!c.chunked_transfer, "monolithic delivery stays the default");
        assert_eq!(c.chunk_bytes, 64 * 1024 * 1024);
        assert!(c.fault_plan.is_none(), "no faults by default");
        assert!(!c.reliable_delivery, "reliability machinery off by default");
        assert!(!c.delta_transfer, "full checkpoints stay the default");
        assert!(!c.coalesce_updates, "blocking delivery stays the default");
        assert_eq!(c.coalesce_queue_depth, 1, "pure collapse-to-latest");
        assert!(!c.relay_tree, "point-to-point delivery stays the default");
        assert_eq!(c.relay_fanout, 4);
        assert_eq!(c.reactor_threads, 1, "inline CRC verification by default");
    }

    #[test]
    fn with_relay_tree_implies_reliability_and_clamps_fanout() {
        let c = ViperConfig::default().with_relay_tree(8);
        assert!(c.relay_tree);
        assert_eq!(c.relay_fanout, 8);
        assert!(c.reliable_delivery);
        let c = ViperConfig::default().with_relay_tree(0);
        assert_eq!(c.relay_fanout, 1, "fan-out clamps to at least 1");
    }

    #[test]
    fn with_coalescing_implies_reliability() {
        let c = ViperConfig::default().with_coalescing();
        assert!(c.coalesce_updates);
        assert!(c.reliable_delivery);
    }

    #[test]
    fn builder_sets_reactor_threads() {
        let c = ViperConfig::default().with_reactor_threads(4);
        assert_eq!(c.reactor_threads, 4);
    }

    #[test]
    fn with_delta_implies_reliability() {
        let c = ViperConfig::default().with_delta();
        assert!(c.delta_transfer);
        assert!(c.reliable_delivery);
    }

    #[test]
    fn with_faults_enables_reliability() {
        let c = ViperConfig::default().with_faults(viper_net::FaultPlan::seeded(1).with_drop(0.2));
        assert!(c.reliable_delivery);
        assert_eq!(c.fault_plan.as_ref().map(|p| p.seed), Some(1));
        let c = ViperConfig::default().with_reliable();
        assert!(c.reliable_delivery);
        assert!(c.fault_plan.is_none());
    }

    #[test]
    fn builder_enables_chunking() {
        let c = ViperConfig::default().with_chunked(8 * 1024 * 1024);
        assert!(c.chunked_transfer);
        assert_eq!(c.chunk_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn baseline_polls() {
        assert!(matches!(
            ViperConfig::h5py_baseline().discovery,
            DiscoveryMode::Poll { .. }
        ));
    }

    #[test]
    fn baseline_uses_h5_over_pfs() {
        let c = ViperConfig::h5py_baseline();
        assert_eq!(c.strategy.route, Route::PfsStaging);
        assert_eq!(c.format, FormatKind::H5);
    }

    #[test]
    fn format_kinds_build() {
        assert_eq!(FormatKind::Viper.build().name(), "viper");
        assert_eq!(FormatKind::H5.build().name(), "h5py");
    }

    #[test]
    fn builder_sets_strategy() {
        let c = ViperConfig::default().with_strategy(Route::HostToHost, CaptureMode::Sync);
        assert_eq!(c.strategy.route, Route::HostToHost);
        assert_eq!(c.strategy.mode, CaptureMode::Sync);
    }
}
