//! Producer-side distribution state: the relay tree over attached
//! consumers.
//!
//! [`Distribution`] owns the deployment's current [`Topology`] and keeps
//! it deterministic: the tree is rebuilt (in sorted member order) only
//! when the attached-consumer set actually changes, so repeated saves see
//! the same shape regardless of attach order, reactor thread count, or
//! telemetry settings. Relay failures reparent the live tree in place
//! ([`Distribution::note_failed`]) and demote the failed node to leaf
//! duty on subsequent rebuilds, so a flaky consumer can rejoin the fleet
//! without being handed a subtree again.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use viper_net::Topology;

/// The deployment's relay-tree state. Constructed once per deployment
/// (held in the shared context); all methods are callable from any
/// thread.
pub(crate) struct Distribution {
    enabled: bool,
    fanout: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    topology: Option<Topology>,
    /// Members demoted to leaf duty after failing as relays.
    demoted: HashSet<String>,
    reparents: u64,
}

impl Distribution {
    pub(crate) fn new(enabled: bool, fanout: usize) -> Self {
        Distribution {
            enabled,
            fanout: fanout.max(1),
            inner: Mutex::new(Inner {
                topology: None,
                demoted: HashSet::new(),
                reparents: 0,
            }),
        }
    }

    /// Whether relay-tree distribution is on at all.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Bring the topology up to date with the attached-consumer set and
    /// return the delivery groups: one entry per tree root, mapping it to
    /// its whole subtree (root first, BFS order). Returns `None` when
    /// distribution is disabled or fewer than two consumers are attached
    /// — the direct path is strictly simpler there.
    ///
    /// Determinism: members are sorted before building (demoted members
    /// last, so failed relays become leaves), and the tree is only
    /// rebuilt when the member *set* changed — an in-place reparent from
    /// a failure survives across saves.
    pub(crate) fn refresh(&self, consumers: &[String]) -> Option<BTreeMap<String, Vec<String>>> {
        if !self.enabled || consumers.len() < 2 {
            return None;
        }
        let mut inner = self.inner.lock();
        let stale = match &inner.topology {
            Some(t) => t.len() != consumers.len() || !consumers.iter().all(|c| t.contains(c)),
            None => true,
        };
        if stale {
            let mut members: Vec<String> = consumers.to_vec();
            members.sort();
            // Stable partition: proven relays (never failed) first, so
            // demoted members land in the deep/leaf positions.
            let demoted = std::mem::take(&mut inner.demoted);
            members.sort_by_key(|m| demoted.contains(m));
            inner.demoted = demoted;
            inner.topology =
                Some(Topology::build(&members, self.fanout).expect("sorted unique member list"));
        }
        let topology = inner.topology.as_ref().expect("built above");
        Some(
            topology
                .roots()
                .into_iter()
                .map(|r| (r.to_string(), topology.subtree_of(r)))
                .collect(),
        )
    }

    /// The nodes `node` currently relays to (empty for leaves, unknown
    /// nodes, and when distribution is off).
    pub(crate) fn children_of(&self, node: &str) -> Vec<String> {
        if !self.enabled {
            return Vec::new();
        }
        let inner = self.inner.lock();
        match &inner.topology {
            Some(t) => t
                .children_of(node)
                .into_iter()
                .map(str::to_string)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Record a relay failure: remove `node` from the tree (its children
    /// are re-homed deterministically) and demote it to leaf duty in
    /// future rebuilds. Returns the re-homed direct children, or `None`
    /// if the node was not in the tree.
    pub(crate) fn note_failed(&self, node: &str) -> Option<Vec<String>> {
        let mut inner = self.inner.lock();
        inner.demoted.insert(node.to_string());
        let moved = inner.topology.as_mut()?.reparent(node).ok()?;
        inner.reparents += 1;
        Some(moved)
    }

    /// How many in-place reparents failures have forced so far.
    #[cfg(test)]
    pub(crate) fn reparents(&self) -> u64 {
        self.inner.lock().reparents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i}")).collect()
    }

    #[test]
    fn disabled_or_tiny_fleets_take_the_direct_path() {
        let off = Distribution::new(false, 4);
        assert!(off.refresh(&names(10)).is_none());
        assert!(off.children_of("c0").is_empty());
        let on = Distribution::new(true, 4);
        assert!(on.refresh(&names(1)).is_none());
        assert!(on.refresh(&[]).is_none());
    }

    #[test]
    fn refresh_is_deterministic_and_stable_across_saves() {
        let d = Distribution::new(true, 2);
        let mut shuffled = names(7);
        shuffled.reverse();
        let a = d.refresh(&shuffled).unwrap();
        let b = d.refresh(&names(7)).unwrap();
        assert_eq!(a, b, "same member set, same groups, any order");
        assert_eq!(a.len(), 1, "single root");
        let (root, members) = a.iter().next().unwrap();
        assert_eq!(root, "c0", "sorted order puts c0 at the root");
        assert_eq!(members.len(), 7);
        assert_eq!(d.children_of("c0"), vec!["c1", "c2"]);
    }

    #[test]
    fn membership_change_rebuilds() {
        let d = Distribution::new(true, 2);
        d.refresh(&names(4)).unwrap();
        let groups = d.refresh(&names(6)).unwrap();
        assert_eq!(groups.values().next().unwrap().len(), 6);
    }

    #[test]
    fn failure_reparents_in_place_and_demotes() {
        let d = Distribution::new(true, 2);
        d.refresh(&names(7)).unwrap();
        let moved = d.note_failed("c1").unwrap();
        assert_eq!(moved, vec!["c3", "c4"]);
        assert_eq!(d.reparents(), 1);
        // The reparented tree survives a same-membership refresh minus
        // the failed node...
        let survivors: Vec<String> = names(7).into_iter().filter(|n| n != "c1").collect();
        let groups = d.refresh(&survivors).unwrap();
        assert_eq!(groups.values().next().unwrap().len(), 6);
        // ...and when c1 rejoins, the rebuild keeps it out of relay duty.
        let groups = d.refresh(&names(7)).unwrap();
        let root = groups.keys().next().unwrap();
        assert_ne!(root, "c1");
        assert!(
            d.children_of("c1").is_empty(),
            "demoted member serves as leaf"
        );
    }

    #[test]
    fn unknown_failures_are_ignored() {
        let d = Distribution::new(true, 2);
        d.refresh(&names(3)).unwrap();
        assert!(d.note_failed("ghost").is_none());
        assert_eq!(d.reparents(), 0);
    }
}
