//! Property tests for the core framework's pure components: the
//! double-buffered model slot and checkpoint sharding.

use proptest::prelude::*;
use viper::shard::{self, ShardAssembler};
use viper::ModelSlot;
use viper_formats::Checkpoint;
use viper_tensor::Tensor;

fn ckpt(name: &str, iter: u64, ntensors: usize) -> Checkpoint {
    Checkpoint::new(
        name,
        iter,
        (0..ntensors)
            .map(|i| (format!("t{i}"), Tensor::full(&[(i + 1) * 3], iter as f32)))
            .collect(),
    )
}

proptest! {
    /// Whatever order updates are installed in, the slot serves the maximum
    /// iteration seen so far — never regressing.
    #[test]
    fn slot_serves_running_maximum(iters in prop::collection::vec(0u64..100, 1..40)) {
        let slot = ModelSlot::new();
        let mut max_seen: Option<u64> = None;
        for &i in &iters {
            let installed = slot.install(ckpt("m", i, 1));
            let is_new_max = max_seen.map(|m| i > m).unwrap_or(true);
            prop_assert_eq!(installed, is_new_max, "iteration {}", i);
            if is_new_max {
                max_seen = Some(i);
            }
            prop_assert_eq!(slot.current_iteration(), max_seen);
        }
        prop_assert_eq!(slot.swap_count(), {
            // Count strictly-increasing prefix maxima.
            let mut m: Option<u64> = None;
            let mut c = 0u64;
            for &i in &iters {
                if m.map(|x| i > x).unwrap_or(true) {
                    m = Some(i);
                    c += 1;
                }
            }
            c
        });
    }

    /// Splitting into any shard count partitions the tensors exactly, and
    /// reassembly in any arrival order reconstructs the full checkpoint.
    #[test]
    fn shard_split_assemble_roundtrip(
        ntensors in 1usize..12,
        nshards in 1usize..6,
        iter in 0u64..1000,
        order_seed in 0usize..720,
    ) {
        let full = ckpt("m", iter, ntensors);
        let mut shards = shard::split(&full, nshards);

        // Tensor partition: every tensor appears exactly once.
        let mut names: Vec<String> =
            shards.iter().flat_map(|s| s.tensors.iter().map(|(n, _)| n.clone())).collect();
        names.sort();
        let mut expected: Vec<String> = (0..ntensors).map(|i| format!("t{i}")).collect();
        expected.sort();
        prop_assert_eq!(names, expected);

        // Pseudo-random arrival order.
        let mut order: Vec<usize> = (0..nshards).collect();
        let mut seed = order_seed;
        for i in (1..nshards).rev() {
            order.swap(i, seed % (i + 1));
            seed /= i + 1;
        }

        let mut asm = ShardAssembler::new("m", nshards);
        let mut result = None;
        for (count, &idx) in order.iter().enumerate() {
            let out = asm.offer(shards[idx].clone());
            if count + 1 < nshards {
                prop_assert!(out.is_none(), "completed early");
            } else {
                result = out;
            }
        }
        let rebuilt = result.expect("all shards offered");
        prop_assert_eq!(rebuilt.iteration, iter);
        prop_assert_eq!(rebuilt.ntensors(), ntensors);
        for (name, tensor) in &full.tensors {
            prop_assert_eq!(rebuilt.tensor(name), Some(tensor));
        }
        let _ = shards.drain(..);
    }

    /// Shard payloads are balanced: the heaviest shard carries at most the
    /// ideal share plus one largest tensor.
    #[test]
    fn shard_balance_bound(ntensors in 1usize..12, nshards in 1usize..6) {
        let full = ckpt("m", 1, ntensors);
        let shards = shard::split(&full, nshards);
        let total: u64 = full.payload_bytes();
        let biggest_tensor =
            full.tensors.iter().map(|(_, t)| t.byte_len() as u64).max().unwrap_or(0);
        let heaviest = shards.iter().map(|s| s.payload_bytes()).max().unwrap_or(0);
        prop_assert!(
            heaviest <= total / nshards as u64 + biggest_tensor,
            "heaviest {heaviest}, ideal {}, max tensor {biggest_tensor}",
            total / nshards as u64
        );
    }

    /// Shard names always parse back to their constituents.
    #[test]
    fn shard_names_parse(base in "[a-z][a-z0-9_-]{0,20}", idx in 0usize..16, total in 1usize..17) {
        prop_assume!(idx < total);
        let n = shard::shard_name(&base, idx, total);
        prop_assert_eq!(shard::parse_shard_name(&n), Some((base.as_str(), idx, total)));
    }
}
