//! Property tests for the chunked transfer path: framing round-trips for
//! arbitrary payload/chunk geometries, and the flow assembler reconstructs
//! byte-identical payloads under arbitrary interleavings, duplicates, and
//! concurrent flows.

use proptest::prelude::*;
use std::time::Duration;
use viper_hw::SimInstant;
use viper_net::{
    chunk_sizes, ChunkHeader, FlowAssembler, FlowStatus, LinkKind, Message, MessageKind, WireBuf,
};

/// Wrap a payload in a fabric message, the shape the assembler sees.
fn msg(from: &str, payload: Vec<u8>, kind: MessageKind) -> Message {
    let t = SimInstant::ZERO;
    Message {
        from: from.into(),
        to: "c".into(),
        tag: "m".into(),
        payload: WireBuf::plain(payload),
        kind,
        link: LinkKind::GpuDirect,
        sent_at: t,
        arrived_at: t,
        wire_time: Duration::ZERO,
    }
}

/// Split a payload into framed chunk messages for one flow.
fn frame_flow(flow_id: u64, payload: &[u8], chunk_bytes: u64) -> Vec<Vec<u8>> {
    let sizes = chunk_sizes(payload.len() as u64, chunk_bytes);
    let num_chunks = sizes.len() as u32;
    let mut offset = 0u64;
    sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let body = &payload[offset as usize..(offset + len) as usize];
            let header = ChunkHeader::for_body(
                flow_id,
                i as u32,
                num_chunks,
                offset,
                payload.len() as u64,
                body,
            );
            offset += len;
            header.frame(body)
        })
        .collect()
}

proptest! {
    /// Chunk geometry always covers the payload exactly, in order, with
    /// every chunk non-empty (except the single chunk of an empty payload)
    /// and no chunk above the requested size.
    #[test]
    fn chunk_sizes_partition_the_payload(bytes in 0u64..100_000, chunk in 0u64..10_000) {
        let sizes = chunk_sizes(bytes, chunk);
        prop_assert!(!sizes.is_empty());
        prop_assert_eq!(sizes.iter().sum::<u64>(), bytes);
        if chunk > 0 {
            for &s in &sizes {
                prop_assert!(s <= chunk);
            }
        } else {
            prop_assert_eq!(sizes.len(), 1);
        }
    }

    /// Framing round-trips: decode(frame(body)) recovers the header and the
    /// body for arbitrary chunk geometries, and the carried CRC matches the
    /// body bytes.
    #[test]
    fn framing_roundtrips(
        payload in prop::collection::vec(0u8..=255, 0..4096),
        chunk in 1u64..2048,
        flow_id in 0u64..u64::MAX,
    ) {
        let frames = frame_flow(flow_id, &payload, chunk);
        let mut rebuilt = vec![0u8; payload.len()];
        for (i, frame) in frames.iter().enumerate() {
            let (header, body) = ChunkHeader::decode(frame).expect("framed chunk decodes");
            prop_assert_eq!(header.flow_id, flow_id);
            prop_assert_eq!(header.chunk_index as usize, i);
            prop_assert_eq!(header.num_chunks as usize, frames.len());
            prop_assert_eq!(header.total_bytes as usize, payload.len());
            prop_assert_eq!(header.crc32, viper_formats::crc32(body));
            rebuilt[header.offset as usize..header.offset as usize + body.len()]
                .copy_from_slice(body);
        }
        prop_assert_eq!(rebuilt, payload);
    }

    /// A data-kind message always passes through the assembler untouched —
    /// even when its payload is byte-for-byte valid chunk framing. Chunk
    /// handling keys on `MessageKind`, never on payload sniffing, so a
    /// monolithic payload can never be swallowed as a phantom chunk.
    #[test]
    fn adversarial_data_payloads_always_pass_through(
        body in prop::collection::vec(0u8..=255, 0..2048),
        flow_id in 0u64..u64::MAX,
    ) {
        let framed = ChunkHeader::for_body(
            flow_id, 0, 2, 0, 2 * body.len().max(1) as u64, &body,
        ).frame(&body);
        prop_assert!(ChunkHeader::decode(&framed).is_some(), "premise: frames as a chunk");
        let mut asm = FlowAssembler::new();
        match asm.accept(msg("p", framed.clone(), MessageKind::Data)) {
            FlowStatus::Passthrough(m) => prop_assert_eq!(m.payload.to_vec(), framed),
            other => prop_assert!(false, "expected passthrough, got {:?}", std::mem::discriminant(&other)),
        }
        prop_assert_eq!(asm.in_progress(), 0);
    }

    /// Short or unframed payloads can never decode as chunks, and as data
    /// messages they pass through the assembler untouched.
    #[test]
    fn short_or_unframed_payloads_pass_through(payload in prop::collection::vec(0u8..=255, 0..39)) {
        // Shorter than a header: can never decode as a chunk.
        prop_assert!(ChunkHeader::decode(&payload).is_none());
        let mut asm = FlowAssembler::new();
        match asm.accept(msg("p", payload.clone(), MessageKind::Data)) {
            FlowStatus::Passthrough(m) => prop_assert_eq!(m.payload.to_vec(), payload),
            other => prop_assert!(false, "expected passthrough, got {:?}", std::mem::discriminant(&other)),
        }
    }

    /// The assembler reconstructs byte-identical payloads for concurrent
    /// flows (distinct flow ids and distinct senders) under an arbitrary
    /// interleaving with duplicated chunks. Each flow completes exactly once.
    #[test]
    fn assembler_reassembles_under_arbitrary_interleaving(
        lens in prop::collection::vec(0usize..3000, 1..4),
        chunk in 1u64..512,
        order_seed in 0u64..u64::MAX,
        dup_stride in 1usize..5,
    ) {
        // Flow i from sender "p{i % 2}": same sender with distinct flow ids
        // and distinct senders with colliding flow ids both stay separate.
        let payloads: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| (i * 37 + j * 13 + 7) as u8).collect())
            .collect();
        let mut stream: Vec<(String, u64, Vec<u8>)> = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            let from = format!("p{}", i % 2);
            for frame in frame_flow((i / 2) as u64, payload, chunk) {
                stream.push((from.clone(), i as u64, frame));
            }
        }
        // Duplicate every dup_stride-th message (retransmission model).
        let dups: Vec<_> =
            stream.iter().step_by(dup_stride).cloned().collect();
        stream.extend(dups);
        // Fisher–Yates with a deterministic LCG for the arrival order.
        let mut seed = order_seed;
        for i in (1..stream.len()).rev() {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            stream.swap(i, (seed >> 33) as usize % (i + 1));
        }

        let mut asm = FlowAssembler::new();
        let mut completed: Vec<Option<Vec<u8>>> = vec![None; payloads.len()];
        for (from, flow_tag, frame) in stream {
            match asm.accept(msg(&from, frame, MessageKind::Chunk)) {
                FlowStatus::Buffered => {}
                FlowStatus::Complete(flow) => {
                    let i = flow_tag as usize;
                    prop_assert!(completed[i].is_none(), "flow {} completed twice", i);
                    prop_assert_eq!(&flow.from, &from);
                    completed[i] = Some(flow.payload.to_vec());
                }
                other => prop_assert!(
                    false,
                    "clean chunk misparsed: {:?}",
                    std::mem::discriminant(&other)
                ),
            }
        }
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(
                completed[i].as_ref(),
                Some(payload),
                "flow {} not byte-identical", i
            );
        }
    }
}
