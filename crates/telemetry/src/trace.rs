//! The span/event flight recorder.

use crate::metrics::MetricsRegistry;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use viper_hw::SimClock;

/// Default flight-recorder capacity (events retained before the oldest
/// are evicted).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A typed argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// An unsigned integer argument.
    U64(u64),
    /// A signed integer argument.
    I64(i64),
    /// A floating-point argument.
    F64(f64),
    /// A boolean argument.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// What a [`TraceEvent`] marks on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened at `ts_ns` (Chrome phase `B`).
    Begin,
    /// The innermost open span on the same track closed (Chrome phase `E`).
    End,
    /// A point event (Chrome phase `i`).
    Instant,
    /// A span whose begin and end are both known when recorded (Chrome
    /// phase `X`); `ts_ns` is the begin, `end_ns` the end.
    Complete {
        /// Nanosecond timestamp the span ended at.
        end_ns: u64,
    },
    /// A sampled counter value (Chrome phase `C`), rendered by trace
    /// viewers as a stepped area chart.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanosecond timestamp in the recorder's clock domain (virtual ns
    /// when a virtual clock is bound, wall ns otherwise).
    pub ts_ns: u64,
    /// Category (stable, dot-free; e.g. `"producer"`, `"fabric"`).
    pub cat: &'static str,
    /// Event name (e.g. `"wire"`, `"backoff"`).
    pub name: String,
    /// Track the event belongs to — rendered as its own row (Chrome
    /// "thread"). E.g. a node name or a fabric lane.
    pub track: String,
    /// What the event marks.
    pub kind: EventKind,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Duration of a [`EventKind::Complete`] event; zero for other kinds.
    pub fn duration_ns(&self) -> u64 {
        match self.kind {
            EventKind::Complete { end_ns } => end_ns.saturating_sub(self.ts_ns),
            _ => 0,
        }
    }
}

enum ClockSource {
    /// Wall clock, as nanoseconds since the handle was created.
    Wall(std::time::Instant),
    /// The deployment's shared virtual clock.
    Virtual(SimClock),
}

struct Inner {
    enabled: AtomicBool,
    clock: RwLock<ClockSource>,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
    metrics: MetricsRegistry,
}

/// A cheaply clonable telemetry handle: flight recorder + metrics
/// registry + clock binding. Clones share all state.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("events", &self.inner.events.lock().len())
            .field("capacity", &self.inner.capacity)
            .field("virtual_clock", &self.uses_virtual_clock())
            .finish()
    }
}

impl Telemetry {
    fn with_state(enabled: bool, capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                clock: RwLock::new(ClockSource::Wall(std::time::Instant::now())),
                capacity,
                events: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// A disabled handle: recording calls are no-ops (metrics still
    /// count). This is the default for every deployment.
    pub fn disabled() -> Self {
        Telemetry::with_state(false, DEFAULT_CAPACITY)
    }

    /// An enabled handle with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Telemetry::with_state(true, DEFAULT_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` events (oldest
    /// evicted first; evictions are counted, never silent).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry::with_state(true, capacity.max(1))
    }

    /// Whether trace recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn trace recording on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Key timestamps to `clock` (virtual nanoseconds) instead of the
    /// wall clock. `Viper::new` binds its deployment clock here.
    pub fn bind_virtual_clock(&self, clock: SimClock) {
        *self.inner.clock.write() = ClockSource::Virtual(clock);
    }

    /// Whether a virtual clock is bound (vs. the wall-clock fallback).
    pub fn uses_virtual_clock(&self) -> bool {
        matches!(&*self.inner.clock.read(), ClockSource::Virtual(_))
    }

    /// Current time in the recorder's clock domain, integer nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match &*self.inner.clock.read() {
            ClockSource::Wall(origin) => {
                origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
            }
            ClockSource::Virtual(clock) => clock.now().as_nanos(),
        }
    }

    /// The metrics registry shared by all clones of this handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Counter handle for `name` (registered on first use).
    pub fn counter(&self, name: &str) -> crate::Counter {
        self.inner.metrics.counter(name)
    }

    /// Gauge handle for `name` (registered on first use).
    pub fn gauge(&self, name: &str) -> crate::Gauge {
        self.inner.metrics.gauge(name)
    }

    /// Fixed-bucket histogram handle for `name` (registered on first use
    /// with `bounds` as inclusive upper bounds; an overflow bucket is
    /// implicit).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> crate::Histogram {
        self.inner.metrics.histogram(name, bounds)
    }

    fn record(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock();
        if events.len() >= self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Open a span on `track` now; the span closes when the returned
    /// guard drops. No-op (and no allocation) when disabled.
    pub fn span(&self, cat: &'static str, name: &str, track: &str) -> SpanGuard {
        self.span_with(cat, name, track, &[])
    }

    /// [`Telemetry::span`] with arguments attached to the opening event.
    pub fn span_with(
        &self,
        cat: &'static str,
        name: &str,
        track: &str,
        args: &[(&'static str, ArgValue)],
    ) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { inner: None };
        }
        self.record(TraceEvent {
            ts_ns: self.now_ns(),
            cat,
            name: name.to_string(),
            track: track.to_string(),
            kind: EventKind::Begin,
            args: args.to_vec(),
        });
        SpanGuard {
            inner: Some(SpanState {
                telemetry: self.clone(),
                cat,
                name: name.to_string(),
                track: track.to_string(),
                args: Vec::new(),
            }),
        }
    }

    /// Record a span whose begin and end instants are both already known
    /// (e.g. computed analytically by the fabric's chunk scheduler).
    pub fn complete(
        &self,
        cat: &'static str,
        name: &str,
        track: &str,
        begin_ns: u64,
        end_ns: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            ts_ns: begin_ns,
            cat,
            name: name.to_string(),
            track: track.to_string(),
            kind: EventKind::Complete {
                end_ns: end_ns.max(begin_ns),
            },
            args: args.to_vec(),
        });
    }

    /// Record a point event at an explicit timestamp (e.g. a fault the
    /// fabric resolved at a scheduled arrival instant).
    pub fn instant_at(
        &self,
        cat: &'static str,
        name: &str,
        track: &str,
        ts_ns: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            ts_ns,
            cat,
            name: name.to_string(),
            track: track.to_string(),
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Record a point event now.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &str,
        track: &str,
        args: &[(&'static str, ArgValue)],
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            ts_ns: self.now_ns(),
            cat,
            name: name.to_string(),
            track: track.to_string(),
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Sample a counter value onto the timeline (rendered as a stepped
    /// area chart by trace viewers). Independent of the metrics registry.
    pub fn counter_sample(&self, cat: &'static str, name: &str, track: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            ts_ns: self.now_ns(),
            cat,
            name: name.to_string(),
            track: track.to_string(),
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Snapshot of all retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Number of events evicted from the ring buffer so far.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Discard all retained events (the dropped counter is kept).
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }
}

struct SpanState {
    telemetry: Telemetry,
    cat: &'static str,
    name: String,
    track: String,
    args: Vec<(&'static str, ArgValue)>,
}

/// Guard returned by [`Telemetry::span`]; records the span end when
/// dropped. Guards must drop in LIFO order per track for the trace to
/// nest properly — natural Rust scoping guarantees this.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    inner: Option<SpanState>,
}

impl SpanGuard {
    /// Attach an argument to the span's closing event (e.g. a result
    /// computed while the span was open).
    pub fn arg(&mut self, key: &'static str, value: ArgValue) {
        if let Some(state) = &mut self.inner {
            state.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(state) = self.inner.take() {
            let ts_ns = state.telemetry.now_ns();
            state.telemetry.record(TraceEvent {
                ts_ns,
                cat: state.cat,
                name: state.name,
                track: state.track,
                kind: EventKind::End,
                args: state.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        {
            let mut s = t.span("c", "n", "tr");
            s.arg("k", 1u64.into());
        }
        t.instant("c", "i", "tr", &[]);
        t.complete("c", "x", "tr", 0, 10, &[]);
        t.counter_sample("c", "v", "tr", 1.0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn metrics_count_even_when_disabled() {
        let t = Telemetry::disabled();
        t.counter("hits").inc();
        t.counter("hits").add(2);
        assert_eq!(t.counter("hits").get(), 3);
    }

    #[test]
    fn span_records_begin_and_end() {
        let t = Telemetry::enabled();
        {
            let mut s = t.span_with("cat", "work", "main", &[("in", 1u64.into())]);
            s.arg("out", 2u64.into());
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[0].args, vec![("in", ArgValue::U64(1))]);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].args, vec![("out", ArgValue::U64(2))]);
        assert!(events[1].ts_ns >= events[0].ts_ns);
    }

    #[test]
    fn ring_buffer_bounds_and_counts_evictions() {
        let t = Telemetry::with_capacity(4);
        for i in 0..10u64 {
            t.instant("c", &format!("e{i}"), "tr", &[]);
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(t.dropped_events(), 6);
        assert_eq!(events[0].name, "e6", "oldest evicted first");
    }

    #[test]
    fn virtual_clock_binding_keys_timestamps() {
        let t = Telemetry::enabled();
        assert!(!t.uses_virtual_clock());
        let clock = SimClock::new();
        t.bind_virtual_clock(clock.clone());
        assert!(t.uses_virtual_clock());
        clock.advance(Duration::from_secs(3));
        assert_eq!(t.now_ns(), 3_000_000_000);
        t.instant("c", "i", "tr", &[]);
        assert_eq!(t.events()[0].ts_ns, 3_000_000_000);
    }

    #[test]
    fn virtual_timestamps_exact_above_2e53_ns() {
        // The f64 seconds round-trip loses integer precision above 2^53
        // ns; the integer path must not.
        let t = Telemetry::enabled();
        let clock = SimClock::new();
        t.bind_virtual_clock(clock.clone());
        let big = (1u64 << 53) + 1;
        clock.advance_to(viper_hw::SimInstant(big));
        assert_eq!(t.now_ns(), big);
    }

    #[test]
    fn complete_event_duration() {
        let t = Telemetry::enabled();
        t.complete("c", "x", "tr", 100, 350, &[]);
        assert_eq!(t.events()[0].duration_ns(), 250);
        // End clamped to begin when inverted.
        t.complete("c", "y", "tr", 400, 300, &[]);
        assert_eq!(t.events()[1].duration_ns(), 0);
    }

    #[test]
    fn clones_share_recorder() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t2.instant("c", "i", "tr", &[]);
        assert_eq!(t.events().len(), 1);
        t.set_enabled(false);
        assert!(!t2.is_enabled());
    }
}
