//! Chrome trace-event JSON export.
//!
//! [`export`] renders a [`Telemetry`] recorder's contents in the Chrome
//! trace-event format (the JSON Array-with-metadata flavour), loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `about://tracing`. Each
//! distinct track becomes its own named thread row.
//!
//! Timestamps are microseconds. They are formatted from the recorder's
//! integer nanoseconds with integer arithmetic (`ns / 1000` plus a
//! three-digit fractional part), so no `f64` round-trip can lose
//! precision however long the virtual timeline runs.

use crate::trace::{ArgValue, EventKind, Telemetry, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact microsecond rendering of an integer nanosecond timestamp.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn arg_value(v: &ArgValue, out: &mut String) {
    match v {
        ArgValue::Str(s) => escape(s, out),
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn args_object(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape(k, out);
        out.push(':');
        arg_value(v, out);
    }
    out.push('}');
}

fn event_json(ev: &TraceEvent, tid: u64, out: &mut String) {
    out.push_str("{\"pid\":1,\"tid\":");
    let _ = write!(out, "{tid}");
    out.push_str(",\"ts\":");
    out.push_str(&us(ev.ts_ns));
    out.push_str(",\"cat\":");
    escape(ev.cat, out);
    out.push_str(",\"name\":");
    escape(&ev.name, out);
    match &ev.kind {
        EventKind::Begin => out.push_str(",\"ph\":\"B\""),
        EventKind::End => out.push_str(",\"ph\":\"E\""),
        EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        EventKind::Complete { end_ns } => {
            out.push_str(",\"ph\":\"X\",\"dur\":");
            out.push_str(&us(end_ns.saturating_sub(ev.ts_ns)));
        }
        EventKind::Counter { value } => {
            out.push_str(",\"ph\":\"C\",\"args\":{\"value\":");
            if value.is_finite() {
                let _ = write!(out, "{value}");
            } else {
                out.push('0');
            }
            out.push_str("}}");
            return;
        }
    }
    out.push_str(",\"args\":");
    args_object(&ev.args, out);
    out.push('}');
}

/// Render the recorder's events as Chrome trace-event JSON.
pub fn export(telemetry: &Telemetry) -> String {
    export_events(
        &telemetry.events(),
        telemetry.uses_virtual_clock(),
        telemetry.dropped_events(),
    )
}

/// Render an explicit event list as Chrome trace-event JSON.
pub fn export_events(events: &[TraceEvent], virtual_clock: bool, dropped: u64) -> String {
    // Stable track → tid assignment, in order of first appearance.
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut order: Vec<&str> = Vec::new();
    for ev in events {
        if !tids.contains_key(ev.track.as_str()) {
            let tid = order.len() as u64 + 1;
            tids.insert(&ev.track, tid);
            order.push(&ev.track);
        }
    }
    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"pid\":1,\"tid\":0,\"ts\":0,\"ph\":\"M\",\"name\":\"process_name\",\
         \"args\":{\"name\":\"viper\"}}",
    );
    for track in &order {
        let tid = tids[track];
        out.push_str(",{\"pid\":1,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"ts\":0,\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":");
        escape(track, &mut out);
        out.push_str("}}");
    }
    for ev in events {
        out.push(',');
        event_json(ev, tids[ev.track.as_str()], &mut out);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clockDomain\":");
    escape(if virtual_clock { "virtual" } else { "wall" }, &mut out);
    out.push_str(",\"droppedEvents\":");
    let _ = write!(out, "{dropped}");
    out.push_str("}}");
    out
}

/// Render the handle's metrics registry as an aligned text table
/// (counters, gauges, then histograms).
pub fn render_metrics(telemetry: &Telemetry) -> String {
    let snap = telemetry.metrics().snapshot();
    let mut out = String::new();
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .chain(snap.histograms.iter().map(|h| h.name.len()))
        .max()
        .unwrap_or(0);
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{name:<width$}  {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "{name:<width$}  {v}");
    }
    for h in &snap.histograms {
        let _ = write!(out, "{:<width$}  n={} sum={} [", h.name, h.count, h.sum);
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match h.bounds.get(i) {
                Some(bound) => {
                    let _ = write!(out, "<={bound}:{b}");
                }
                None => {
                    let _ = write!(out, ">:{b}");
                }
            }
        }
        out.push_str("]\n");
    }
    out
}

/// Check that `input` is one well-formed JSON value. A deliberately tiny
/// recursive-descent parser — enough for tests and the CI smoke step to
/// reject a malformed export without external dependencies.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|_| ())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'u') => {
                        if *pos + 4 >= b.len()
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at byte {pos}")),
        }
    }
}

/// Check span well-formedness: on every track, `Begin`/`End` events must
/// balance like parentheses in recording order with non-decreasing
/// timestamps. Returns the offending track on failure.
pub fn check_nesting(events: &[TraceEvent]) -> Result<(), String> {
    let mut open: BTreeMap<&str, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Begin => open.entry(&ev.track).or_default().push(ev),
            EventKind::End => {
                let Some(begin) = open.entry(&ev.track).or_default().pop() else {
                    return Err(format!("End without Begin on track {:?}", ev.track));
                };
                if ev.ts_ns < begin.ts_ns {
                    return Err(format!(
                        "span {:?} on track {:?} ends before it begins",
                        begin.name, ev.track
                    ));
                }
            }
            _ => {}
        }
    }
    for (track, stack) in open {
        if !stack.is_empty() {
            return Err(format!(
                "{} unclosed span(s) on track {track:?}",
                stack.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_microsecond_formatting() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_234_567), "1234.567");
        // Above 2^53 ns an f64 seconds round-trip would be lossy; the
        // integer path is exact.
        let big = (1u64 << 53) + 3;
        assert_eq!(us(big), format!("{}.{:03}", big / 1000, big % 1000));
    }

    #[test]
    fn export_is_valid_json_with_tracks() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("cat", "outer \"quoted\"\n", "track-a");
            t.instant("cat", "tick", "track-b", &[("msg", "a\\b".into())]);
        }
        t.complete("cat", "x", "track-a", 10, 20, &[("f", 1.5f64.into())]);
        t.counter_sample("cat", "depth", "track-b", 3.0);
        let json = export(&t);
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("track-a"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"clockDomain\":\"wall\""));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{\"a\":[1,{\"b\":null}],\"c\":-1.5e3}").is_ok());
    }

    #[test]
    fn nesting_checker_catches_imbalance() {
        let t = Telemetry::enabled();
        let s1 = t.span("c", "a", "tr");
        let s2 = t.span("c", "b", "tr");
        drop(s2);
        drop(s1);
        check_nesting(&t.events()).expect("balanced");

        let t2 = Telemetry::enabled();
        let s = t2.span("c", "a", "tr");
        std::mem::forget(s); // leak: Begin without End
        assert!(check_nesting(&t2.events()).is_err());
    }

    #[test]
    fn metrics_render_as_table() {
        let t = Telemetry::enabled();
        t.counter("producer.retransmits").add(3);
        t.gauge("pubsub.depth").set(2);
        t.histogram("wire_us", &[10, 100]).record(50);
        let table = render_metrics(&t);
        assert!(table.contains("producer.retransmits"));
        assert!(table.contains("<=100:1"));
    }
}
