//! # viper-telemetry
//!
//! Observability for the Viper pipeline: a virtual-clock-aware span/event
//! recorder, a metrics registry, and a Chrome trace-event exporter.
//!
//! Every latency claim in the Viper paper (Figs. 5–10) is a timeline
//! attribution claim — snapshot vs. serialize vs. transfer vs. install.
//! This crate makes those attributions observable: components record spans
//! and counters against the deployment's shared [`viper_hw::SimClock`]
//! (falling back to wall clock when no virtual clock is bound), and the
//! whole timeline exports as Chrome trace-event JSON loadable in Perfetto
//! or `about://tracing`.
//!
//! Three pieces:
//!
//! * [`Telemetry`] — a cheaply clonable handle around a bounded
//!   ring-buffer *flight recorder*. When disabled (the default), every
//!   recording call is a branch-and-return no-op: no locks, no
//!   allocation, and — crucially — it never touches the virtual clock, so
//!   simulated makespans are bit-identical with telemetry on or off.
//! * [`MetricsRegistry`] (reached through the same handle) — named
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s. Metrics
//!   are plain atomics and stay live even when tracing is disabled, so
//!   public accessors built on them (retry counts, malformed-chunk
//!   counts) always report.
//! * [`chrome`] — the exporter. [`chrome::export`] renders the recorder's
//!   contents as Chrome trace-event JSON; [`chrome::render_metrics`]
//!   renders the registry as a text table.
//!
//! ## Clock domains
//!
//! Timestamps are `u64` nanoseconds. With a virtual clock bound
//! ([`Telemetry::bind_virtual_clock`] — `Viper::new` does this for the
//! deployment handle) they are virtual nanoseconds since simulation
//! start, read with the integer accessor [`viper_hw::SimInstant::as_nanos`]
//! so no `f64` round-trip ever loses precision. Without one they are wall
//! nanoseconds since the handle was created. Real-compute phases that do
//! not advance the virtual clock (e.g. serialization) show up as
//! zero-duration spans on the virtual timeline with their wall duration
//! attached as a `wall_us` argument.
//!
//! ## Example
//!
//! ```
//! use viper_telemetry::Telemetry;
//!
//! let t = Telemetry::enabled();
//! {
//!     let _span = t.span("demo", "outer", "main");
//!     t.instant("demo", "milestone", "main", &[("k", 7u64.into())]);
//! }
//! t.counter("demo.events").inc();
//! let json = viper_telemetry::chrome::export(&t);
//! assert!(json.contains("\"traceEvents\""));
//! assert_eq!(t.counter("demo.events").get(), 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{ArgValue, EventKind, SpanGuard, Telemetry, TraceEvent};
