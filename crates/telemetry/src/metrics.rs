//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are plain shared atomics handed out by name, so the hot path
//! is an `Arc` deref plus one atomic op — no locks, no formatting. They
//! stay live even when span recording is disabled: public accessors
//! (retry counts, malformed-chunk counts, queue depths) are built on
//! them and must always report.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, occupancy).
#[derive(Debug, Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) and return the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds of each bucket; values above the last bound
    /// land in the implicit overflow bucket.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets (the last is the overflow bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` samples (typically microseconds
/// or bytes). Bucket bounds are fixed at registration.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of per-bucket counts (last entry is the overflow bucket).
    pub fn buckets(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The registered bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }
}

/// Point-in-time copy of one histogram, as exported in snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A registry of named metrics. Handles returned for the same name share
/// the same underlying atomic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                value: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    /// Gauge handle for `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                value: Arc::new(AtomicI64::new(0)),
            })
            .clone()
    }

    /// Histogram handle for `name`, registering it with `bounds` on first
    /// use. Later calls return the existing histogram regardless of the
    /// `bounds` they pass — bucket layout is fixed at registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut sorted: Vec<u64> = bounds.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
                Histogram {
                    inner: Arc::new(HistogramInner {
                        bounds: sorted,
                        buckets,
                        count: AtomicU64::new(0),
                        sum: AtomicU64::new(0),
                    }),
                }
            })
            .clone()
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    bounds: h.bounds().to_vec(),
                    buckets: h.buckets(),
                    count: h.count(),
                    sum: h.sum(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").add(4);
        r.counter("b").inc();
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.counter("b").get(), 1);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.set(10);
        assert_eq!(g.add(-3), 7);
        assert_eq!(r.gauge("depth").get(), 7);
    }

    #[test]
    fn histogram_buckets_samples() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_us", &[10, 100, 1000]);
        for v in [1, 9, 10, 11, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.buckets(), vec![3, 2, 0, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 9 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn histogram_bounds_fixed_at_registration() {
        let r = MetricsRegistry::new();
        r.histogram("h", &[5, 1, 5]);
        let h = r.histogram("h", &[999]);
        assert_eq!(h.bounds(), &[1, 5], "sorted, deduped, first wins");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").add(2);
        r.gauge("g").set(-4);
        r.histogram("h", &[10]).record(3);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".into(), 2), ("z".into(), 1)]);
        assert_eq!(s.counter("z"), Some(1));
        assert_eq!(s.gauge("g"), Some(-4));
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].buckets, vec![1, 0]);
    }
}
