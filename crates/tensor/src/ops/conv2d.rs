//! 2-D convolution and max-pooling kernels (channels-last layout).
//!
//! The real PtychoNN maps 2-D diffraction patterns to 2-D amplitude/phase
//! images; these kernels support the 2-D variant of the workload. Layout
//! follows Keras: inputs `[batch, h, w, in_ch]`, kernels
//! `[kh, kw, in_ch, out_ch]`, outputs `[batch, oh, ow, out_ch]` with
//! *valid* padding.

use crate::ops::conv::out_len;
use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// (batch, h, w, in_ch, kh, kw, out_ch, oh, ow) after validation.
type Conv2dDims = (
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
    usize,
);

fn check_shapes(input: &Tensor, kernel: &Tensor, stride: (usize, usize)) -> Result<Conv2dDims> {
    let idims = input.dims();
    let kdims = kernel.dims();
    if idims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d",
            got: idims.len(),
            expected: 4,
        });
    }
    if kdims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d kernel",
            got: kdims.len(),
            expected: 4,
        });
    }
    if stride.0 == 0 || stride.1 == 0 {
        return Err(TensorError::InvalidArgument(
            "conv2d strides must be >= 1".into(),
        ));
    }
    let (batch, h, w, in_ch) = (idims[0], idims[1], idims[2], idims[3]);
    let (kh, kw, k_in, out_ch) = (kdims[0], kdims[1], kdims[2], kdims[3]);
    if k_in != in_ch {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: idims.to_vec(),
            rhs: kdims.to_vec(),
        });
    }
    if kh > h || kw > w {
        return Err(TensorError::InvalidArgument(format!(
            "conv2d kernel {kh}x{kw} exceeds input {h}x{w}"
        )));
    }
    let oh = out_len(h, kh, stride.0);
    let ow = out_len(w, kw, stride.1);
    Ok((batch, h, w, in_ch, kh, kw, out_ch, oh, ow))
}

/// Forward valid 2-D convolution.
pub fn conv2d(input: &Tensor, kernel: &Tensor, stride: (usize, usize)) -> Result<Tensor> {
    let (batch, h, w, in_ch, kh, kw, out_ch, oh, ow) = check_shapes(input, kernel, stride)?;
    let x = input.as_slice();
    let k = kernel.as_slice();
    let per_sample = oh * ow * out_ch;
    let mut out = vec![0.0f32; batch * per_sample];

    let body = |b: usize, out_b: &mut [f32]| {
        let x_b = &x[b * h * w * in_ch..(b + 1) * h * w * in_ch];
        for oy in 0..oh {
            for ox in 0..ow {
                let (sy, sx) = (oy * stride.0, ox * stride.1);
                let out_pos = &mut out_b[(oy * ow + ox) * out_ch..(oy * ow + ox + 1) * out_ch];
                for ky in 0..kh {
                    for kx in 0..kw {
                        let x_px = &x_b[((sy + ky) * w + sx + kx) * in_ch
                            ..((sy + ky) * w + sx + kx + 1) * in_ch];
                        let k_px = &k[((ky * kw + kx) * in_ch) * out_ch
                            ..((ky * kw + kx + 1) * in_ch) * out_ch];
                        for (c, &xv) in x_px.iter().enumerate() {
                            if xv == 0.0 {
                                continue;
                            }
                            let k_row = &k_px[c * out_ch..(c + 1) * out_ch];
                            for (ov, &kv) in out_pos.iter_mut().zip(k_row) {
                                *ov += xv * kv;
                            }
                        }
                    }
                }
            }
        }
    };

    let work = batch * per_sample * kh * kw * in_ch;
    if work < crate::PAR_THRESHOLD {
        for (b, out_b) in out.chunks_mut(per_sample).enumerate() {
            body(b, out_b);
        }
    } else {
        out.par_chunks_mut(per_sample)
            .enumerate()
            .for_each(|(b, out_b)| body(b, out_b));
    }
    Tensor::from_vec(out, &[batch, oh, ow, out_ch])
}

/// Gradient of a valid conv2d w.r.t. the kernel.
pub fn conv2d_grad_kernel(
    input: &Tensor,
    grad_out: &Tensor,
    ksize: (usize, usize),
    stride: (usize, usize),
) -> Result<Tensor> {
    let idims = input.dims();
    let gdims = grad_out.dims();
    if idims.len() != 4 || gdims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_grad_kernel",
            got: idims.len().min(gdims.len()),
            expected: 4,
        });
    }
    let (batch, h, w, in_ch) = (idims[0], idims[1], idims[2], idims[3]);
    let (kh, kw) = ksize;
    let (gb, oh, ow, out_ch) = (gdims[0], gdims[1], gdims[2], gdims[3]);
    if gb != batch || oh != out_len(h, kh, stride.0) || ow != out_len(w, kw, stride.1) {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_kernel",
            lhs: idims.to_vec(),
            rhs: gdims.to_vec(),
        });
    }
    let x = input.as_slice();
    let g = grad_out.as_slice();
    let mut gk = vec![0.0f32; kh * kw * in_ch * out_ch];
    for b in 0..batch {
        let x_b = &x[b * h * w * in_ch..(b + 1) * h * w * in_ch];
        let g_b = &g[b * oh * ow * out_ch..(b + 1) * oh * ow * out_ch];
        for oy in 0..oh {
            for ox in 0..ow {
                let (sy, sx) = (oy * stride.0, ox * stride.1);
                let g_pos = &g_b[(oy * ow + ox) * out_ch..(oy * ow + ox + 1) * out_ch];
                for ky in 0..kh {
                    for kx in 0..kw {
                        let x_px = &x_b[((sy + ky) * w + sx + kx) * in_ch
                            ..((sy + ky) * w + sx + kx + 1) * in_ch];
                        let gk_px = &mut gk[((ky * kw + kx) * in_ch) * out_ch
                            ..((ky * kw + kx + 1) * in_ch) * out_ch];
                        for (c, &xv) in x_px.iter().enumerate() {
                            if xv == 0.0 {
                                continue;
                            }
                            let gk_row = &mut gk_px[c * out_ch..(c + 1) * out_ch];
                            for (gkv, &gv) in gk_row.iter_mut().zip(g_pos) {
                                *gkv += xv * gv;
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gk, &[kh, kw, in_ch, out_ch])
}

/// Gradient of a valid conv2d w.r.t. the input.
pub fn conv2d_grad_input(
    kernel: &Tensor,
    grad_out: &Tensor,
    input_hw: (usize, usize),
    stride: (usize, usize),
) -> Result<Tensor> {
    let kdims = kernel.dims();
    let gdims = grad_out.dims();
    if kdims.len() != 4 || gdims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_grad_input",
            got: kdims.len().min(gdims.len()),
            expected: 4,
        });
    }
    let (kh, kw, in_ch, out_ch) = (kdims[0], kdims[1], kdims[2], kdims[3]);
    let (h, w) = input_hw;
    let (batch, oh, ow, g_out_ch) = (gdims[0], gdims[1], gdims[2], gdims[3]);
    if g_out_ch != out_ch || oh != out_len(h, kh, stride.0) || ow != out_len(w, kw, stride.1) {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_grad_input",
            lhs: kdims.to_vec(),
            rhs: gdims.to_vec(),
        });
    }
    let k = kernel.as_slice();
    let g = grad_out.as_slice();
    let mut gx = vec![0.0f32; batch * h * w * in_ch];
    for b in 0..batch {
        let g_b = &g[b * oh * ow * out_ch..(b + 1) * oh * ow * out_ch];
        let gx_b = &mut gx[b * h * w * in_ch..(b + 1) * h * w * in_ch];
        for oy in 0..oh {
            for ox in 0..ow {
                let (sy, sx) = (oy * stride.0, ox * stride.1);
                let g_pos = &g_b[(oy * ow + ox) * out_ch..(oy * ow + ox + 1) * out_ch];
                for ky in 0..kh {
                    for kx in 0..kw {
                        let k_px = &k[((ky * kw + kx) * in_ch) * out_ch
                            ..((ky * kw + kx + 1) * in_ch) * out_ch];
                        let gx_px = &mut gx_b[((sy + ky) * w + sx + kx) * in_ch
                            ..((sy + ky) * w + sx + kx + 1) * in_ch];
                        for (c, gxv) in gx_px.iter_mut().enumerate() {
                            let k_row = &k_px[c * out_ch..(c + 1) * out_ch];
                            let mut acc = 0.0f32;
                            for (&kv, &gv) in k_row.iter().zip(g_pos) {
                                acc += kv * gv;
                            }
                            *gxv += acc;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(gx, &[batch, h, w, in_ch])
}

/// Forward 2-D max pooling; returns the pooled tensor and flat argmax
/// indices for the backward pass.
pub fn maxpool2d(
    input: &Tensor,
    window: (usize, usize),
    stride: (usize, usize),
) -> Result<(Tensor, Vec<u32>)> {
    let idims = input.dims();
    if idims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "maxpool2d",
            got: idims.len(),
            expected: 4,
        });
    }
    if window.0 == 0 || window.1 == 0 || stride.0 == 0 || stride.1 == 0 {
        return Err(TensorError::InvalidArgument(
            "maxpool2d window/stride must be >= 1".into(),
        ));
    }
    let (batch, h, w, ch) = (idims[0], idims[1], idims[2], idims[3]);
    if window.0 > h || window.1 > w {
        return Err(TensorError::InvalidArgument(format!(
            "maxpool2d window {}x{} exceeds input {h}x{w}",
            window.0, window.1
        )));
    }
    let oh = out_len(h, window.0, stride.0);
    let ow = out_len(w, window.1, stride.1);
    let x = input.as_slice();
    let mut out = vec![0.0f32; batch * oh * ow * ch];
    let mut idx = vec![0u32; batch * oh * ow * ch];
    for b in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                for c in 0..ch {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ky in 0..window.0 {
                        for kx in 0..window.1 {
                            let flat =
                                ((b * h + oy * stride.0 + ky) * w + ox * stride.1 + kx) * ch + c;
                            if x[flat] > best {
                                best = x[flat];
                                best_i = flat;
                            }
                        }
                    }
                    let o_flat = ((b * oh + oy) * ow + ox) * ch + c;
                    out[o_flat] = best;
                    idx[o_flat] = best_i as u32;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[batch, oh, ow, ch])?, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1: output == input.
        let x = t(
            &(1..=16).map(|v| v as f32).collect::<Vec<_>>(),
            &[1, 4, 4, 1],
        );
        let k = t(&[1.0], &[1, 1, 1, 1]);
        let y = conv2d(&x, &k, (1, 1)).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
        assert_eq!(y.dims(), &[1, 4, 4, 1]);
    }

    #[test]
    fn box_filter_sums_window() {
        let x = Tensor::ones(&[1, 4, 4, 1]);
        let k = Tensor::ones(&[2, 2, 1, 1]);
        let y = conv2d(&x, &k, (1, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 3, 3, 1]);
        assert!(y.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn stride_reduces_output() {
        let x = Tensor::ones(&[1, 6, 6, 1]);
        let k = Tensor::ones(&[2, 2, 1, 1]);
        let y = conv2d(&x, &k, (2, 2)).unwrap();
        assert_eq!(y.dims(), &[1, 3, 3, 1]);
    }

    #[test]
    fn shape_errors() {
        let x = Tensor::ones(&[1, 4, 4, 2]);
        assert!(conv2d(&x, &Tensor::ones(&[2, 2, 3, 1]), (1, 1)).is_err()); // channel mismatch
        assert!(conv2d(&x, &Tensor::ones(&[5, 2, 2, 1]), (1, 1)).is_err()); // too tall
        assert!(conv2d(&x, &Tensor::ones(&[2, 2, 2, 1]), (0, 1)).is_err()); // zero stride
        assert!(conv2d(&Tensor::ones(&[4, 4]), &Tensor::ones(&[2, 2, 1, 1]), (1, 1)).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let x = t(
            &[
                0.5, -0.3, 0.8, 0.1, -0.6, 0.9, 0.2, -0.4, 0.7, 0.3, -0.2, 0.6, 0.1, 0.5, -0.8, 0.4,
            ],
            &[1, 4, 4, 1],
        );
        let k = t(&[0.2, -0.5, 0.7, 0.3], &[2, 2, 1, 1]);
        let stride = (1, 1);
        let y = conv2d(&x, &k, stride).unwrap();
        let gy = Tensor::ones(y.dims());
        let gk = conv2d_grad_kernel(&x, &gy, (2, 2), stride).unwrap();
        let gx = conv2d_grad_input(&k, &gy, (4, 4), stride).unwrap();

        let eps = 1e-3;
        for i in 0..k.len() {
            let mut kp = k.clone();
            kp.as_mut_slice()[i] += eps;
            let mut km = k.clone();
            km.as_mut_slice()[i] -= eps;
            let lp = conv2d(&x, &kp, stride).unwrap().sum();
            let lm = conv2d(&x, &km, stride).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gk.as_slice()[i] - num).abs() < 1e-2, "gk[{i}]");
        }
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = conv2d(&xp, &k, stride).unwrap().sum();
            let lm = conv2d(&xm, &k, stride).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[i] - num).abs() < 1e-2, "gx[{i}]");
        }
    }

    #[test]
    fn multichannel_conv_mixes_channels() {
        // 1x1 kernel swapping two channels.
        let x = t(&[1.0, 10.0, 2.0, 20.0], &[1, 1, 2, 2]);
        let k = t(&[0.0, 1.0, 1.0, 0.0], &[1, 1, 2, 2]);
        let y = conv2d(&x, &k, (1, 1)).unwrap();
        assert_eq!(y.as_slice(), &[10.0, 1.0, 20.0, 2.0]);
    }

    #[test]
    fn maxpool2d_forward_and_indices() {
        let x = t(
            &[
                1.0, 5.0, 2.0, 8.0, 3.0, 0.0, 7.0, 4.0, 6.0, 1.0, 9.0, 2.0, 0.0, 3.0, 1.0, 4.0,
            ],
            &[1, 4, 4, 1],
        );
        let (y, idx) = maxpool2d(&x, (2, 2), (2, 2)).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 1]);
        // Windows: {1,5,3,0}, {2,8,7,4}, {6,1,0,3}, {9,2,1,4}.
        assert_eq!(y.as_slice(), &[5.0, 8.0, 6.0, 9.0]);
        for (&i, &v) in idx.iter().zip(y.as_slice()) {
            assert_eq!(x.as_slice()[i as usize], v);
        }
    }

    #[test]
    fn maxpool2d_rejects_bad_params() {
        let x = Tensor::ones(&[1, 4, 4, 1]);
        assert!(maxpool2d(&x, (0, 2), (1, 1)).is_err());
        assert!(maxpool2d(&x, (2, 2), (0, 1)).is_err());
        assert!(maxpool2d(&x, (5, 2), (1, 1)).is_err());
    }
}
