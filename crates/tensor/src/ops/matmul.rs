//! 2-D matrix multiplication and transpose.
//!
//! The matmul kernel parallelises over output rows with rayon and keeps the
//! inner loop in `k`-major order so the `rhs` row is walked contiguously —
//! the classic cache-friendly ikj loop order.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// `lhs (m,k) x rhs (k,n) -> (m,n)`.
pub fn matmul(lhs: &Tensor, rhs: &Tensor) -> Result<Tensor> {
    let (ld, rd) = (lhs.dims(), rhs.dims());
    if ld.len() != 2 || rd.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "matmul",
            got: if ld.len() != 2 { ld.len() } else { rd.len() },
            expected: 2,
        });
    }
    let (m, k) = (ld[0], ld[1]);
    let (k2, n) = (rd[0], rd[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: ld.to_vec(),
            rhs: rd.to_vec(),
        });
    }

    let a = lhs.as_slice();
    let b = rhs.as_slice();
    let mut out = vec![0.0f32; m * n];

    let row_work = k * n;
    if m * row_work < crate::PAR_THRESHOLD {
        for i in 0..m {
            matmul_row(&a[i * k..(i + 1) * k], b, &mut out[i * n..(i + 1) * n], n);
        }
    } else {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
            matmul_row(&a[i * k..(i + 1) * k], b, out_row, n);
        });
    }

    Tensor::from_vec(out, &[m, n])
}

#[inline]
fn matmul_row(a_row: &[f32], b: &[f32], out_row: &mut [f32], n: usize) {
    for (kk, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a_ik * bv;
        }
    }
}

/// Transpose of a 2-D tensor.
pub fn transpose(t: &Tensor) -> Result<Tensor> {
    let d = t.dims();
    if d.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "transpose",
            got: d.len(),
            expected: 2,
        });
    }
    let (m, n) = (d[0], d[1]);
    let src = t.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = src[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn small_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_matmul() {
        let a = t(&[1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]); // 2x3
        let b = t(&[2.0, 1.0, 0.0, 1.0, -1.0, 0.0], &[3, 2]); // 3x2
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[0.0, 1.0, -3.0, 2.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.5, -2.0, 0.25, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).unwrap(), a);
        assert_eq!(Tensor::eye(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn rank_checked() {
        let a = Tensor::zeros(&[6]);
        let b = Tensor::zeros(&[6, 1]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Big enough to cross PAR_THRESHOLD: 200x200x200 row work.
        let m = 64;
        let k = 64;
        let n = 64;
        let a_data: Vec<f32> = (0..m * k).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
        let b_data: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let a = t(&a_data, &[m, k]);
        let b = t(&b_data, &[k, n]);
        let c = a.matmul(&b).unwrap();
        // Spot-check against a naive computation.
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (m / 2, n / 3)] {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_data[i * k + kk] * b_data[kk * n + j];
            }
            let got = c.as_slice()[i * n + j];
            assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at.transpose().unwrap(), a);
    }
}
