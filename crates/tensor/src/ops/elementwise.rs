//! Elementwise kernels with a sequential fast path for small buffers.

use crate::PAR_THRESHOLD;
use rayon::prelude::*;

/// `out[i] = f(a[i])`.
pub fn map(a: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    if a.len() < PAR_THRESHOLD {
        a.iter().map(|&x| f(x)).collect()
    } else {
        a.par_iter().map(|&x| f(x)).collect()
    }
}

/// `a[i] = f(a[i])`.
pub fn map_inplace(a: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    if a.len() < PAR_THRESHOLD {
        for x in a.iter_mut() {
            *x = f(*x);
        }
    } else {
        a.par_iter_mut().for_each(|x| *x = f(*x));
    }
}

/// `out[i] = f(a[i], b[i])`. Caller guarantees equal lengths.
pub fn zip(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
    } else {
        a.par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| f(x, y))
            .collect()
    }
}

/// `a[i] += alpha * b[i]`. Caller guarantees equal lengths.
pub fn axpy(a: &mut [f32], alpha: f32, b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += alpha * y;
        }
    } else {
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x += alpha * y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_small_and_large_agree() {
        let small: Vec<f32> = (0..10).map(|x| x as f32).collect();
        let large: Vec<f32> = (0..PAR_THRESHOLD + 1).map(|x| x as f32).collect();
        assert_eq!(
            map(&small, |x| x * 2.0),
            small.iter().map(|x| x * 2.0).collect::<Vec<_>>()
        );
        let mapped = map(&large, |x| x + 1.0);
        assert_eq!(mapped[0], 1.0);
        assert_eq!(mapped[large.len() - 1], large[large.len() - 1] + 1.0);
    }

    #[test]
    fn map_inplace_matches_map() {
        let mut a: Vec<f32> = (0..100).map(|x| x as f32).collect();
        let expected = map(&a, |x| x * x);
        map_inplace(&mut a, |x| x * x);
        assert_eq!(a, expected);
    }

    #[test]
    fn zip_pairs_elements() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert_eq!(zip(&a, &b, |x, y| y - x), vec![9.0, 18.0, 27.0]);
    }

    #[test]
    fn axpy_parallel_path() {
        let n = PAR_THRESHOLD + 7;
        let mut a = vec![1.0f32; n];
        let b = vec![2.0f32; n];
        axpy(&mut a, 0.5, &b);
        assert!(a.iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }
}
