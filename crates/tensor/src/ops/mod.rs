//! Tensor kernels: elementwise maps, reductions, matmul, 1-D convolution.

pub mod conv;
pub mod conv2d;
pub mod elementwise;
pub mod matmul;
pub mod reduce;
