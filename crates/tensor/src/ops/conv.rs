//! 1-D convolution and max-pooling kernels (channels-last layout).
//!
//! The CANDLE NT3/TC1 benchmarks reproduced by Viper are 1-D convolutional
//! networks over RNA-seq profiles, so the only convolution the stack needs
//! is `Conv1D`. Layout follows Keras: inputs are `[batch, length, in_ch]`,
//! kernels are `[k, in_ch, out_ch]`, outputs `[batch, out_len, out_ch]`
//! with *valid* padding.

use crate::{Result, Tensor, TensorError};
use rayon::prelude::*;

/// Output length of a valid 1-D convolution/pool.
#[inline]
pub fn out_len(input_len: usize, window: usize, stride: usize) -> usize {
    if input_len < window || stride == 0 {
        0
    } else {
        (input_len - window) / stride + 1
    }
}

fn check_conv_shapes(
    input: &Tensor,
    kernel: &Tensor,
    stride: usize,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    let idims = input.dims();
    let kdims = kernel.dims();
    if idims.len() != 3 {
        return Err(TensorError::RankMismatch {
            op: "conv1d",
            got: idims.len(),
            expected: 3,
        });
    }
    if kdims.len() != 3 {
        return Err(TensorError::RankMismatch {
            op: "conv1d kernel",
            got: kdims.len(),
            expected: 3,
        });
    }
    if stride == 0 {
        return Err(TensorError::InvalidArgument(
            "conv1d stride must be >= 1".into(),
        ));
    }
    let (batch, length, in_ch) = (idims[0], idims[1], idims[2]);
    let (k, k_in, out_ch) = (kdims[0], kdims[1], kdims[2]);
    if k_in != in_ch {
        return Err(TensorError::ShapeMismatch {
            op: "conv1d",
            lhs: idims.to_vec(),
            rhs: kdims.to_vec(),
        });
    }
    if k > length {
        return Err(TensorError::InvalidArgument(format!(
            "conv1d kernel width {k} exceeds input length {length}"
        )));
    }
    Ok((batch, length, in_ch, k, out_ch, out_len(length, k, stride)))
}

/// Forward valid 1-D convolution.
pub fn conv1d(input: &Tensor, kernel: &Tensor, stride: usize) -> Result<Tensor> {
    let (batch, _, in_ch, k, out_ch, olen) = check_conv_shapes(input, kernel, stride)?;
    let x = input.as_slice();
    let w = kernel.as_slice();
    let ilen = input.dims()[1];
    let mut out = vec![0.0f32; batch * olen * out_ch];

    let per_sample = olen * out_ch;
    let work = batch * per_sample * k * in_ch;
    let body = |b: usize, out_b: &mut [f32]| {
        let x_b = &x[b * ilen * in_ch..(b + 1) * ilen * in_ch];
        for o in 0..olen {
            let start = o * stride;
            let out_pos = &mut out_b[o * out_ch..(o + 1) * out_ch];
            for kk in 0..k {
                let x_t = &x_b[(start + kk) * in_ch..(start + kk + 1) * in_ch];
                let w_k = &w[kk * in_ch * out_ch..(kk + 1) * in_ch * out_ch];
                for (c, &xv) in x_t.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let w_row = &w_k[c * out_ch..(c + 1) * out_ch];
                    for (ov, &wv) in out_pos.iter_mut().zip(w_row) {
                        *ov += xv * wv;
                    }
                }
            }
        }
    };

    if work < crate::PAR_THRESHOLD {
        for (b, out_b) in out.chunks_mut(per_sample).enumerate() {
            body(b, out_b);
        }
    } else {
        out.par_chunks_mut(per_sample)
            .enumerate()
            .for_each(|(b, out_b)| body(b, out_b));
    }

    Tensor::from_vec(out, &[batch, olen, out_ch])
}

/// Gradient of a valid conv1d w.r.t. the kernel.
///
/// `grad_out` must be `[batch, out_len, out_ch]`; returns `[k, in_ch, out_ch]`.
pub fn conv1d_grad_kernel(
    input: &Tensor,
    grad_out: &Tensor,
    k: usize,
    stride: usize,
) -> Result<Tensor> {
    let idims = input.dims();
    let gdims = grad_out.dims();
    if idims.len() != 3 || gdims.len() != 3 {
        return Err(TensorError::RankMismatch {
            op: "conv1d_grad_kernel",
            got: idims.len().min(gdims.len()),
            expected: 3,
        });
    }
    let (batch, ilen, in_ch) = (idims[0], idims[1], idims[2]);
    let (gb, olen, out_ch) = (gdims[0], gdims[1], gdims[2]);
    if gb != batch || olen != out_len(ilen, k, stride) {
        return Err(TensorError::ShapeMismatch {
            op: "conv1d_grad_kernel",
            lhs: idims.to_vec(),
            rhs: gdims.to_vec(),
        });
    }
    let x = input.as_slice();
    let g = grad_out.as_slice();
    let mut gw = vec![0.0f32; k * in_ch * out_ch];
    for b in 0..batch {
        let x_b = &x[b * ilen * in_ch..(b + 1) * ilen * in_ch];
        let g_b = &g[b * olen * out_ch..(b + 1) * olen * out_ch];
        for o in 0..olen {
            let start = o * stride;
            let g_pos = &g_b[o * out_ch..(o + 1) * out_ch];
            for kk in 0..k {
                let x_t = &x_b[(start + kk) * in_ch..(start + kk + 1) * in_ch];
                let gw_k = &mut gw[kk * in_ch * out_ch..(kk + 1) * in_ch * out_ch];
                for (c, &xv) in x_t.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let gw_row = &mut gw_k[c * out_ch..(c + 1) * out_ch];
                    for (gwv, &gv) in gw_row.iter_mut().zip(g_pos) {
                        *gwv += xv * gv;
                    }
                }
            }
        }
    }
    Tensor::from_vec(gw, &[k, in_ch, out_ch])
}

/// Gradient of a valid conv1d w.r.t. the input.
///
/// Returns `[batch, input_len, in_ch]`.
pub fn conv1d_grad_input(
    kernel: &Tensor,
    grad_out: &Tensor,
    input_len: usize,
    stride: usize,
) -> Result<Tensor> {
    let kdims = kernel.dims();
    let gdims = grad_out.dims();
    if kdims.len() != 3 || gdims.len() != 3 {
        return Err(TensorError::RankMismatch {
            op: "conv1d_grad_input",
            got: kdims.len().min(gdims.len()),
            expected: 3,
        });
    }
    let (k, in_ch, out_ch) = (kdims[0], kdims[1], kdims[2]);
    let (batch, olen, g_out_ch) = (gdims[0], gdims[1], gdims[2]);
    if g_out_ch != out_ch || olen != out_len(input_len, k, stride) {
        return Err(TensorError::ShapeMismatch {
            op: "conv1d_grad_input",
            lhs: kdims.to_vec(),
            rhs: gdims.to_vec(),
        });
    }
    let w = kernel.as_slice();
    let g = grad_out.as_slice();
    let mut gx = vec![0.0f32; batch * input_len * in_ch];
    for b in 0..batch {
        let g_b = &g[b * olen * out_ch..(b + 1) * olen * out_ch];
        let gx_b = &mut gx[b * input_len * in_ch..(b + 1) * input_len * in_ch];
        for o in 0..olen {
            let start = o * stride;
            let g_pos = &g_b[o * out_ch..(o + 1) * out_ch];
            for kk in 0..k {
                let w_k = &w[kk * in_ch * out_ch..(kk + 1) * in_ch * out_ch];
                let gx_t = &mut gx_b[(start + kk) * in_ch..(start + kk + 1) * in_ch];
                for (c, gxv) in gx_t.iter_mut().enumerate() {
                    let w_row = &w_k[c * out_ch..(c + 1) * out_ch];
                    let mut acc = 0.0f32;
                    for (&wv, &gv) in w_row.iter().zip(g_pos) {
                        acc += wv * gv;
                    }
                    *gxv += acc;
                }
            }
        }
    }
    Tensor::from_vec(gx, &[batch, input_len, in_ch])
}

/// Forward max-pool over the length dimension.
///
/// Returns the pooled tensor `[batch, out_len, ch]` plus the flat input
/// indices of each selected maximum (for the backward pass).
pub fn maxpool1d(input: &Tensor, window: usize, stride: usize) -> Result<(Tensor, Vec<u32>)> {
    let idims = input.dims();
    if idims.len() != 3 {
        return Err(TensorError::RankMismatch {
            op: "maxpool1d",
            got: idims.len(),
            expected: 3,
        });
    }
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument(
            "maxpool1d window/stride must be >= 1".into(),
        ));
    }
    let (batch, ilen, ch) = (idims[0], idims[1], idims[2]);
    if window > ilen {
        return Err(TensorError::InvalidArgument(format!(
            "maxpool1d window {window} exceeds input length {ilen}"
        )));
    }
    let olen = out_len(ilen, window, stride);
    let x = input.as_slice();
    let mut out = vec![0.0f32; batch * olen * ch];
    let mut idx = vec![0u32; batch * olen * ch];
    for b in 0..batch {
        for o in 0..olen {
            let start = o * stride;
            for c in 0..ch {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for t in start..start + window {
                    let flat = (b * ilen + t) * ch + c;
                    if x[flat] > best {
                        best = x[flat];
                        best_i = flat;
                    }
                }
                let o_flat = (b * olen + o) * ch + c;
                out[o_flat] = best;
                idx[o_flat] = best_i as u32;
            }
        }
    }
    Ok((Tensor::from_vec(out, &[batch, olen, ch])?, idx))
}

/// Backward max-pool: scatter `grad_out` back to the argmax positions.
pub fn maxpool1d_backward(
    grad_out: &Tensor,
    indices: &[u32],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != indices.len() {
        return Err(TensorError::LengthMismatch {
            got: indices.len(),
            expected: grad_out.len(),
        });
    }
    let mut gx = Tensor::zeros(input_dims);
    let g = grad_out.as_slice();
    let gx_data = gx.as_mut_slice();
    for (&gv, &i) in g.iter().zip(indices) {
        gx_data[i as usize] += gv;
    }
    Ok(gx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn out_len_formula() {
        assert_eq!(out_len(10, 3, 1), 8);
        assert_eq!(out_len(10, 3, 2), 4);
        assert_eq!(out_len(3, 3, 1), 1);
        assert_eq!(out_len(2, 3, 1), 0);
        assert_eq!(out_len(4, 2, 0), 0);
    }

    #[test]
    fn conv1d_single_channel_matches_hand_computation() {
        // input length 4, 1 channel; kernel width 2 -> output length 3.
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 4, 1]);
        let w = t(&[1.0, -1.0], &[2, 1, 1]);
        let y = conv1d(&x, &w, 1).unwrap();
        // y[o] = x[o] - x[o+1]
        assert_eq!(y.as_slice(), &[-1.0, -1.0, -1.0]);
    }

    #[test]
    fn conv1d_multichannel() {
        // 1 sample, length 3, 2 in channels; kernel 1x2x2 (pointwise mix).
        let x = t(&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0], &[1, 3, 2]);
        let w = t(&[1.0, 0.0, 0.0, 1.0], &[1, 2, 2]); // identity channel mix
        let y = conv1d(&x, &w, 1).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv1d_stride_two() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1, 5, 1]);
        let w = t(&[1.0, 1.0], &[2, 1, 1]);
        let y = conv1d(&x, &w, 2).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1]);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn conv1d_shape_errors() {
        let x = t(&[0.0; 8], &[1, 4, 2]);
        let w_bad_ch = t(&[0.0; 6], &[2, 3, 1]);
        assert!(conv1d(&x, &w_bad_ch, 1).is_err());
        let w_too_wide = t(&[0.0; 10], &[5, 2, 1]);
        assert!(conv1d(&x, &w_too_wide, 1).is_err());
        let w = t(&[0.0; 4], &[2, 2, 1]);
        assert!(conv1d(&x, &w, 0).is_err());
    }

    /// Finite-difference check of both conv gradients.
    #[test]
    fn conv1d_gradients_match_finite_differences() {
        let x = t(&[0.5, -0.3, 0.8, 0.1, -0.6, 0.9], &[1, 6, 1]);
        let w = t(&[0.2, -0.5, 0.7], &[3, 1, 1]);
        let stride = 1;
        // Loss = sum(conv(x, w)); dL/dy = ones.
        let y = conv1d(&x, &w, stride).unwrap();
        let gy = Tensor::ones(y.dims());
        let gw = conv1d_grad_kernel(&x, &gy, 3, stride).unwrap();
        let gx = conv1d_grad_input(&w, &gy, 6, stride).unwrap();

        let eps = 1e-3;
        // Check dL/dw numerically.
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let lp = conv1d(&x, &wp, stride).unwrap().sum();
            let lm = conv1d(&x, &wm, stride).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gw.as_slice()[i] - num).abs() < 1e-2, "gw[{i}]");
        }
        // Check dL/dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = conv1d(&xp, &w, stride).unwrap().sum();
            let lm = conv1d(&xm, &w, stride).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[i] - num).abs() < 1e-2, "gx[{i}]");
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = t(&[1.0, 5.0, 2.0, 8.0, 3.0, 0.0], &[1, 6, 1]);
        let (y, idx) = maxpool1d(&x, 2, 2).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 8.0, 3.0]);
        assert_eq!(idx, vec![1, 3, 4]);

        let gy = t(&[1.0, 2.0, 3.0], &[1, 3, 1]);
        let gx = maxpool1d_backward(&gy, &idx, &[1, 6, 1]).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn maxpool_rejects_bad_params() {
        let x = t(&[0.0; 4], &[1, 4, 1]);
        assert!(maxpool1d(&x, 0, 1).is_err());
        assert!(maxpool1d(&x, 2, 0).is_err());
        assert!(maxpool1d(&x, 5, 1).is_err());
    }
}
