//! Reduction kernels.

use crate::PAR_THRESHOLD;
use rayon::prelude::*;

/// Sum of all elements.
pub fn sum(a: &[f32]) -> f32 {
    if a.len() < PAR_THRESHOLD {
        a.iter().sum()
    } else {
        a.par_iter().sum()
    }
}

/// Maximum element; negative infinity for an empty slice.
pub fn max(a: &[f32]) -> f32 {
    if a.len() < PAR_THRESHOLD {
        a.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    } else {
        a.par_iter().copied().reduce(|| f32::NEG_INFINITY, f32::max)
    }
}

/// Index of the first maximum element; 0 for an empty slice.
pub fn argmax(a: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Dot product. Caller guarantees equal lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < PAR_THRESHOLD {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    } else {
        a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_small() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn sum_parallel_matches_sequential() {
        let v: Vec<f32> = (0..PAR_THRESHOLD + 100).map(|_| 0.5).collect();
        let seq: f32 = v.iter().sum();
        assert!((sum(&v) - seq).abs() < 1.0);
    }

    #[test]
    fn max_and_argmax() {
        let v = [3.0, -1.0, 7.0, 7.0, 2.0];
        assert_eq!(max(&v), 7.0);
        assert_eq!(argmax(&v), 2, "first maximum wins");
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn dot_products() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
