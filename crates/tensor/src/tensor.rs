//! The dense `f32` tensor type.

use crate::{ops, Initializer, Result, Shape, TensorError};
use rand::Rng;

/// A contiguous, row-major, dense `f32` tensor.
///
/// This is the value type flowing through the whole Viper stack: layer
/// parameters, activations, gradients, and checkpoint payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Build a tensor from raw data and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::LengthMismatch {
                got: data.len(),
                expected: shape.num_elements(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// An all-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.num_elements()],
            shape,
        }
    }

    /// An all-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.num_elements()],
            shape,
        }
    }

    /// The `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A tensor initialised by `init` using the caller's RNG (deterministic
    /// when the RNG is seeded).
    pub fn init<R: Rng + ?Sized>(dims: &[usize], init: Initializer, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = init.sample(&shape, rng);
        Tensor { data, shape }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, e.g. `[batch, features]`.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow the data as the raw bytes of the `f32` slice (native memory
    /// representation). Bit-pattern equality of two tensors is exactly
    /// byte equality of these views, which lets the delta differ run
    /// `memcmp`-class block compares instead of per-lane float compares.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: f32 has no padding or invalid bit patterns when viewed
        // as bytes; length is len * size_of::<f32>() within one allocation.
        unsafe {
            std::slice::from_raw_parts(
                self.data.as_ptr() as *const u8,
                self.data.len() * std::mem::size_of::<f32>(),
            )
        }
    }

    /// Consume the tensor, returning its raw data.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Size of the tensor payload in bytes (`4 * len`).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Element at a multi-dimensional index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Set the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterpret the data under a new shape with the same element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if !self.shape.reshape_compatible(&new_shape) {
            return Err(TensorError::LengthMismatch {
                got: self.len(),
                expected: new_shape.num_elements(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        Tensor {
            data: ops::elementwise::map(&self.data, f),
            shape: self.shape.clone(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        ops::elementwise::map_inplace(&mut self.data, f);
    }

    /// Elementwise binary op against a same-shaped tensor.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
        self.check_same_shape(rhs, "zip")?;
        Ok(Tensor {
            data: ops::elementwise::zip(&self.data, &rhs.data, f),
            shape: self.shape.clone(),
        })
    }

    /// Elementwise addition.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip(rhs, |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (the BLAS `axpy` primitive used by the
    /// optimizers).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        self.check_same_shape(rhs, "axpy")?;
        ops::elementwise::axpy(&mut self.data, alpha, &rhs.data);
        Ok(())
    }

    /// Multiply every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(move |x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        ops::reduce::sum(&self.data)
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        ops::reduce::max(&self.data)
    }

    /// Index of the maximum element in a flat view.
    pub fn argmax(&self) -> usize {
        ops::reduce::argmax(&self.data)
    }

    /// Dot product of two same-shaped tensors viewed flat.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        self.check_same_shape(rhs, "dot")?;
        Ok(ops::reduce::dot(&self.data, &rhs.data))
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        ops::reduce::dot(&self.data, &self.data).sqrt()
    }

    /// 2-D matrix multiplication: `self (m,k) x rhs (k,n) -> (m,n)`.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        ops::matmul::matmul(self, rhs)
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Result<Tensor> {
        ops::matmul::transpose(self)
    }

    fn check_same_shape(&self, rhs: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[3]).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Tensor::ones(&[2]).as_slice(), &[1.0, 1.0]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        let eye = Tensor::eye(2);
        assert_eq!(eye.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.argmax(), 2);
        assert!((t.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let mut r1 = ChaCha8Rng::seed_from_u64(42);
        let mut r2 = ChaCha8Rng::seed_from_u64(42);
        let a = Tensor::init(&[4, 4], Initializer::GlorotUniform, &mut r1);
        let b = Tensor::init(&[4, 4], Initializer::GlorotUniform, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn byte_len_is_four_per_element() {
        assert_eq!(Tensor::zeros(&[10, 10]).byte_len(), 400);
    }
}
