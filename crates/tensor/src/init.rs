//! Parameter initialisation schemes.

use crate::Shape;
use rand::distributions::Distribution;
use rand::Rng;

/// Weight initialisation strategies used by the DNN layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Every element zero (bias default).
    Zeros,
    /// Every element the given constant.
    Constant(f32),
    /// Uniform in `[-limit, limit)`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Normal with the given standard deviation.
    Normal {
        /// Standard deviation.
        std: f32,
    },
    /// Glorot/Xavier uniform: limit = sqrt(6 / (fan_in + fan_out)).
    GlorotUniform,
    /// He/Kaiming normal: std = sqrt(2 / fan_in); suits ReLU stacks.
    HeNormal,
}

impl Initializer {
    /// Sample a buffer for `shape` using `rng`.
    pub fn sample<R: Rng + ?Sized>(self, shape: &Shape, rng: &mut R) -> Vec<f32> {
        let n = shape.num_elements();
        let (fan_in, fan_out) = fans(shape);
        match self {
            Initializer::Zeros => vec![0.0; n],
            Initializer::Constant(c) => vec![c; n],
            Initializer::Uniform { limit } => {
                (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
            }
            Initializer::Normal { std } => {
                let gauss = Gaussian { mean: 0.0, std };
                (0..n).map(|_| gauss.sample(rng)).collect()
            }
            Initializer::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
            }
            Initializer::HeNormal => {
                let gauss = Gaussian {
                    mean: 0.0,
                    std: (2.0 / fan_in as f32).sqrt(),
                };
                (0..n).map(|_| gauss.sample(rng)).collect()
            }
        }
    }
}

/// Fan-in/fan-out convention matching Keras: for rank-2 `[in, out]`; for
/// conv kernels `[k, in, out]` fan_in = k*in, fan_out = k*out; otherwise the
/// element count on both sides.
fn fans(shape: &Shape) -> (usize, usize) {
    match shape.dims() {
        [inp, out] => (*inp, *out),
        [k, inp, out] => (k * inp, k * out),
        dims => {
            let n = dims.iter().product::<usize>().max(1);
            (n, n)
        }
    }
}

/// Minimal Box-Muller Gaussian sampler (keeps us off `rand_distr`).
struct Gaussian {
    mean: f32,
    std: f32,
}

impl Distribution<f32> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box-Muller transform on two uniforms in (0, 1].
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std * mag * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn stats(v: &[f32]) -> (f32, f32) {
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        (mean, var.sqrt())
    }

    #[test]
    fn zeros_and_constant() {
        let s = Shape::new(&[3]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(Initializer::Zeros.sample(&s, &mut rng), vec![0.0; 3]);
        assert_eq!(
            Initializer::Constant(2.5).sample(&s, &mut rng),
            vec![2.5; 3]
        );
    }

    #[test]
    fn uniform_respects_limit() {
        let s = Shape::new(&[10_000]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = Initializer::Uniform { limit: 0.3 }.sample(&s, &mut rng);
        assert!(v.iter().all(|x| (-0.3..0.3).contains(x)));
    }

    #[test]
    fn normal_has_requested_std() {
        let s = Shape::new(&[50_000]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = Initializer::Normal { std: 0.5 }.sample(&s, &mut rng);
        let (mean, std) = stats(&v);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((std - 0.5).abs() < 0.02, "std {std}");
    }

    #[test]
    fn glorot_limit_depends_on_fans() {
        let s = Shape::new(&[100, 200]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = Initializer::GlorotUniform.sample(&s, &mut rng);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(v.iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let s = Shape::new(&[800, 10]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = Initializer::HeNormal.sample(&s, &mut rng);
        let (_, std) = stats(&v);
        let expected = (2.0f32 / 800.0).sqrt();
        assert!(
            (std - expected).abs() < expected * 0.2,
            "std {std} vs {expected}"
        );
    }

    #[test]
    fn conv_kernel_fans() {
        assert_eq!(fans(&Shape::new(&[5, 8, 16])), (40, 80));
        assert_eq!(fans(&Shape::new(&[7])), (7, 7));
    }
}
