//! # viper-tensor
//!
//! Dense `f32` tensor substrate used by the Viper reproduction.
//!
//! The Viper paper trains and serves real DNN models (CANDLE NT3/TC1,
//! PtychoNN) through TensorFlow. This crate provides the minimal tensor
//! machinery a from-scratch training stack needs: row-major dense tensors,
//! shape/stride bookkeeping, elementwise and reduction kernels, matrix
//! multiplication, 1-D convolution/pooling (the CANDLE benchmarks are 1-D
//! convolutional networks), and deterministic random initialisation.
//!
//! Kernels are data-parallel via [rayon] where the work is large enough to
//! amortise the fork/join overhead; small tensors take a sequential path.
//!
//! ## Example
//!
//! ```
//! use viper_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

#![warn(missing_docs)]

mod error;
mod init;
mod shape;
mod tensor;

pub mod ops;

pub use error::{Result, TensorError};
pub use init::Initializer;
pub use shape::Shape;
pub use tensor::Tensor;

/// Work threshold (number of output elements) below which kernels run
/// sequentially instead of spawning rayon tasks.
pub(crate) const PAR_THRESHOLD: usize = 16 * 1024;
