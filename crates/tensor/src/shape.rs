//! Shape and stride bookkeeping for row-major dense tensors.

use crate::{Result, TensorError};

/// A tensor shape: an ordered list of dimension extents.
///
/// Tensors in this crate are always contiguous and row-major, so the shape
/// fully determines the strides.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Build a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension extents.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar shape).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `i`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides: `strides[i]` is the linear-index step for
    /// incrementing dimension `i` by one.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// Returns an error if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                got: index.len(),
                expected: self.rank(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&idx, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            if idx >= self.dims[d] {
                return Err(TensorError::InvalidArgument(format!(
                    "index {idx} out of bounds for dim {d} with extent {}",
                    self.dims[d]
                )));
            }
            off += idx * stride;
        }
        Ok(off)
    }

    /// Whether this shape can be reshaped into `other` (same element count).
    #[inline]
    pub fn reshape_compatible(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[]).num_elements(), 1);
        assert_eq!(Shape::new(&[0, 5]).num_elements(), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn reshape_compatibility() {
        let a = Shape::new(&[2, 6]);
        assert!(a.reshape_compatible(&Shape::new(&[12])));
        assert!(a.reshape_compatible(&Shape::new(&[3, 4])));
        assert!(!a.reshape_compatible(&Shape::new(&[5])));
    }
}
