//! Error types for tensor operations.

use std::fmt;

/// Convenience alias for tensor results.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Elements supplied.
        got: usize,
        /// Elements the shape requires.
        expected: usize,
    },
    /// Two operands have incompatible shapes for the requested kernel.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// The operation requires a different rank (number of dimensions).
    RankMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Rank supplied.
        got: usize,
        /// Rank required.
        expected: usize,
    },
    /// A kernel parameter (stride, kernel width, ...) is invalid.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { got, expected } => {
                write!(
                    f,
                    "length mismatch: got {got} elements, shape requires {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch { op, got, expected } => {
                write!(
                    f,
                    "rank mismatch in {op}: got rank {got}, expected {expected}"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("got 3"));
        assert!(e.to_string().contains("requires 4"));
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::InvalidArgument("x".into()));
    }
}
