//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use viper_tensor::{ops, Tensor};

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    /// Addition commutes elementwise.
    #[test]
    fn add_commutes(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let b = Tensor::from_vec(v.iter().rev().copied().collect(), &[n]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    /// `a - a` is exactly zero (no float reassociation happens elementwise).
    #[test]
    fn sub_self_is_zero(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(v, &[n]).unwrap();
        let z = a.sub(&a).unwrap();
        prop_assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    /// Reshape never changes data and always preserves element count.
    #[test]
    fn reshape_preserves_everything(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(v, &[n]).unwrap();
        let r = a.reshape(&[1, n]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
        prop_assert_eq!(r.len(), a.len());
    }

    /// Transposing twice is the identity.
    #[test]
    fn double_transpose_identity(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i as u64 * 31 + seed) % 17) as f32).collect();
        let a = Tensor::from_vec(data, &[rows, cols]).unwrap();
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    /// (AB)^T == B^T A^T.
    #[test]
    fn matmul_transpose_identity(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..100) {
        let a_data: Vec<f32> = (0..m * k).map(|i| (((i as u64 + seed) % 7) as f32) - 3.0).collect();
        let b_data: Vec<f32> = (0..k * n).map(|i| (((i as u64 * 3 + seed) % 5) as f32) - 2.0).collect();
        let a = Tensor::from_vec(a_data, &[m, k]).unwrap();
        let b = Tensor::from_vec(b_data, &[k, n]).unwrap();
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Dot product against self equals squared L2 norm.
    #[test]
    fn dot_self_is_norm_squared(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(v, &[n]).unwrap();
        let d = a.dot(&a).unwrap();
        let norm2 = a.norm() * a.norm();
        prop_assert!((d - norm2).abs() <= 1e-2 * d.abs().max(1.0));
    }

    /// Max-pool output elements always come from the input.
    #[test]
    fn maxpool_selects_input_elements(v in small_vec(32), window in 1usize..4, stride in 1usize..4) {
        let n = v.len();
        prop_assume!(window <= n);
        let x = Tensor::from_vec(v.clone(), &[1, n, 1]).unwrap();
        let (y, idx) = ops::conv::maxpool1d(&x, window, stride).unwrap();
        for (o, &i) in y.as_slice().iter().zip(&idx) {
            prop_assert_eq!(*o, v[i as usize]);
        }
    }

    /// Conv output length follows the valid-padding formula.
    #[test]
    fn conv_output_length(n in 3usize..32, k in 1usize..4, stride in 1usize..3) {
        prop_assume!(k <= n);
        let x = Tensor::ones(&[1, n, 1]);
        let w = Tensor::ones(&[k, 1, 1]);
        let y = ops::conv::conv1d(&x, &w, stride).unwrap();
        prop_assert_eq!(y.dims()[1], ops::conv::out_len(n, k, stride));
    }

    /// An all-ones kernel over all-ones input yields k everywhere.
    #[test]
    fn conv_ones_sums_window(n in 3usize..16, k in 1usize..4) {
        prop_assume!(k <= n);
        let x = Tensor::ones(&[1, n, 1]);
        let w = Tensor::ones(&[k, 1, 1]);
        let y = ops::conv::conv1d(&x, &w, 1).unwrap();
        prop_assert!(y.as_slice().iter().all(|&v| (v - k as f32).abs() < 1e-6));
    }

    /// axpy with alpha = 0 is a no-op; alpha = 1 is add.
    #[test]
    fn axpy_degenerate_cases(v in small_vec(32)) {
        let n = v.len();
        let a = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let b = Tensor::from_vec(v.iter().map(|x| x * 0.5).collect(), &[n]).unwrap();
        let mut a0 = a.clone();
        a0.axpy(0.0, &b).unwrap();
        prop_assert_eq!(&a0, &a);
        let mut a1 = a.clone();
        a1.axpy(1.0, &b).unwrap();
        prop_assert_eq!(a1, a.add(&b).unwrap());
    }
}
