//! Property tests for the fused single-pass encoder: for arbitrary
//! checkpoints (and deltas, and wire-enveloped payloads), the streaming
//! path's bytes are identical to the legacy materialize-then-checksum
//! path, its per-chunk CRCs equal a fresh CRC over the corresponding
//! slices, and parallel split-and-combine CRCs equal the sequential CRC
//! for arbitrary split points.

use proptest::prelude::*;
use viper_formats::{
    delta, wire, Checkpoint, CheckpointFormat, DeltaCheckpoint, PayloadKind, StreamingEncoder,
    ViperFormat,
};
use viper_tensor::Tensor;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (
        1usize..5,
        1usize..5,
        prop::collection::vec((0u32..=u32::MAX).prop_map(f32::from_bits), 0..25),
    )
        .prop_map(|(a, b, data)| {
            let n = a * b;
            let mut d = data;
            d.resize(n, f32::from_bits(0x8000_0000));
            Tensor::from_vec(d, &[a, b]).unwrap()
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        "[a-z]{1,12}",
        0u64..1_000_000,
        prop::collection::vec(("[a-z/_]{1,20}", arb_tensor()), 0..6),
    )
        .prop_map(|(name, iter, tensors)| {
            // Duplicate tensor names would make delta diffing ambiguous.
            let mut seen = std::collections::HashSet::new();
            let tensors = tensors
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .collect();
            Checkpoint::new(name, iter, tensors)
        })
}

/// Chunk split mirroring viper-net's `chunk_sizes` geometry.
fn split_sizes(bytes: u64, chunk_bytes: u64) -> Vec<u64> {
    if bytes == 0 || chunk_bytes == 0 || chunk_bytes >= bytes {
        return vec![bytes];
    }
    let full = bytes / chunk_bytes;
    let rest = bytes % chunk_bytes;
    let mut sizes = vec![chunk_bytes; full as usize];
    if rest > 0 {
        sizes.push(rest);
    }
    sizes
}

/// The CRC kernels this host can run, so identity holds for every kernel
/// × chunk-geometry combination — not just whichever kernel the
/// dispatcher picked for this process.
fn available_kernels() -> Vec<viper_formats::Crc32Kernel> {
    use viper_formats::Crc32Kernel;
    [
        Crc32Kernel::Clmul,
        Crc32Kernel::Slice16,
        Crc32Kernel::Bytewise,
    ]
    .into_iter()
    .filter(|k| k.available())
    .collect()
}

/// Assert the fused output's bytes equal `legacy` and its chunk CRCs
/// equal independent slice CRCs under the claimed geometry — recomputed
/// with every kernel available on this host.
fn assert_fused_matches(legacy: &[u8], fused: &viper_formats::EncodedPayload, chunk_bytes: u64) {
    assert_eq!(fused.payload.as_slice(), legacy, "wire bytes differ");
    let sizes = split_sizes(legacy.len() as u64, chunk_bytes);
    assert_eq!(fused.chunk_crcs.len(), sizes.len(), "chunk count");
    let mut off = 0usize;
    for (i, (&crc, &len)) in fused.chunk_crcs.iter().zip(sizes.iter()).enumerate() {
        for kernel in available_kernels() {
            assert_eq!(
                crc,
                viper_formats::crc32_with(kernel, &legacy[off..off + len as usize]),
                "chunk {i} CRC under kernel {}",
                kernel.label()
            );
        }
        off += len as usize;
    }
}

proptest! {
    /// Tentpole identity: full-checkpoint fused encode == legacy encode,
    /// bytes and chunk geometry, for arbitrary checkpoints and chunk sizes.
    #[test]
    fn fused_full_encode_is_byte_identical(
        ckpt in arb_checkpoint(),
        chunk_bytes in prop_oneof![Just(0u64), 1u64..512, Just(1u64 << 20)],
    ) {
        let legacy = ViperFormat.encode(&ckpt);
        let mut enc = StreamingEncoder::new(chunk_bytes);
        ViperFormat.encode_into(&ckpt, &mut enc);
        assert_fused_matches(&legacy, &enc.finish(), chunk_bytes);
    }

    /// Wire-enveloped full: envelope streamed into the same buffer equals
    /// `wire::frame` over the legacy encode — headers, footers, and chunk
    /// CRCs computed over the *framed* stream.
    #[test]
    fn fused_framed_full_matches_wire_frame(
        ckpt in arb_checkpoint(),
        chunk_bytes in prop_oneof![Just(0u64), 1u64..512],
    ) {
        let legacy = wire::frame(PayloadKind::Full, &ViperFormat.encode(&ckpt));
        let mut enc = StreamingEncoder::new(chunk_bytes);
        enc.put_bytes(&wire::envelope(PayloadKind::Full));
        ViperFormat.encode_into(&ckpt, &mut enc);
        let fused = enc.finish();
        assert_fused_matches(&legacy, &fused, chunk_bytes);
        // And it still unframes + decodes to the original checkpoint.
        let (kind, body) = wire::unframe(fused.payload.as_slice()).unwrap();
        prop_assert_eq!(kind, PayloadKind::Full);
        let decoded = ViperFormat.decode(body).unwrap();
        prop_assert_eq!(decoded.model_name, ckpt.model_name);
        prop_assert_eq!(decoded.iteration, ckpt.iteration);
    }

    /// Delta payloads: streaming `encode_into` == legacy `encode`, bare
    /// and behind a VPWP envelope.
    #[test]
    fn fused_delta_encode_is_byte_identical(
        pair in (arb_checkpoint(), 0usize..4),
        chunk_bytes in prop_oneof![Just(0u64), 1u64..512],
    ) {
        let (base, rot) = pair;
        // Derive a "fine-tuned" checkpoint by rotating tensor order and
        // perturbing a subset, so the delta has both changed and unchanged
        // entries.
        let mut new = base.clone();
        new.iteration = base.iteration + 1;
        if !new.tensors.is_empty() {
            let r = rot % new.tensors.len();
            new.tensors.rotate_left(r);
            for (i, (_, t)) in new.tensors.iter_mut().enumerate() {
                if i % 2 == 0 {
                    let mut data = t.as_slice().to_vec();
                    if let Some(x) = data.first_mut() {
                        *x = f32::from_bits(x.to_bits() ^ 1);
                    }
                    *t = Tensor::from_vec(data, t.dims()).unwrap();
                }
            }
        }
        let d = delta::diff(&base, &new).unwrap();
        let legacy = d.encode();
        let mut enc = StreamingEncoder::new(chunk_bytes);
        d.encode_into(&mut enc);
        assert_fused_matches(&legacy, &enc.finish(), chunk_bytes);

        // Enveloped delta, as the codec ships it.
        let framed_legacy = wire::frame(PayloadKind::Delta, &legacy);
        let mut enc = StreamingEncoder::new(chunk_bytes);
        enc.put_bytes(&wire::envelope(PayloadKind::Delta));
        d.encode_into(&mut enc);
        let fused = enc.finish();
        assert_fused_matches(&framed_legacy, &fused, chunk_bytes);
        let (kind, body) = wire::unframe(fused.payload.as_slice()).unwrap();
        prop_assert_eq!(kind, PayloadKind::Delta);
        // Compare via re-encode: derived PartialEq would call NaN != NaN a
        // mismatch, but byte identity is the actual contract.
        prop_assert_eq!(DeltaCheckpoint::decode(body).unwrap().encode(), legacy);
    }

    /// Streaming diff: `diff_into` (block compare + direct framed encode,
    /// no intermediate DeltaCheckpoint) is byte-identical to the
    /// materialize-then-encode oracle for arbitrary checkpoint pairs and
    /// chunk geometries, chunk CRCs verified under every kernel.
    #[test]
    fn streaming_diff_matches_materialized_for_all_geometries(
        pair in (arb_checkpoint(), 0usize..4),
        chunk_bytes in prop_oneof![Just(0u64), 1u64..512, Just(1u64 << 20)],
    ) {
        let (base, rot) = pair;
        let mut new = base.clone();
        new.iteration = base.iteration + 1;
        if !new.tensors.is_empty() {
            let r = rot % new.tensors.len();
            new.tensors.rotate_left(r);
            for (i, (_, t)) in new.tensors.iter_mut().enumerate() {
                if i % 2 == 0 {
                    let mut data = t.as_slice().to_vec();
                    if let Some(x) = data.first_mut() {
                        *x = f32::from_bits(x.to_bits() ^ 1);
                    }
                    *t = Tensor::from_vec(data, t.dims()).unwrap();
                }
            }
        }
        let d = delta::diff(&base, &new).unwrap();
        let legacy = wire::frame(PayloadKind::Delta, &d.encode());
        let mut enc = StreamingEncoder::new(chunk_bytes);
        enc.put_bytes(&wire::envelope(PayloadKind::Delta));
        let stats = delta::diff_into(&base, &new, &mut enc).unwrap();
        assert_fused_matches(&legacy, &enc.finish(), chunk_bytes);
        prop_assert_eq!(stats.nchanged, d.changed.len());
        prop_assert_eq!(stats.nunchanged, d.unchanged.len());
    }

    /// Satellite: parallel split-and-combine equals sequential CRC for
    /// arbitrary payloads and split points.
    #[test]
    fn combine_equals_sequential_for_arbitrary_splits(
        data in prop::collection::vec(0u8..=u8::MAX, 0..4096),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let split = split.min(data.len());
        let (a, b) = data.split_at(split);
        let combined = viper_formats::crc32_combine(
            viper_formats::crc32(a),
            viper_formats::crc32(b),
            b.len() as u64,
        );
        prop_assert_eq!(combined, viper_formats::crc32_bytewise(&data));
    }

    /// Multi-way split: folding per-block CRCs with combine equals the
    /// sequential CRC regardless of block size.
    #[test]
    fn multiway_combine_fold_equals_sequential(
        data in prop::collection::vec(0u8..=u8::MAX, 1..4096),
        block in 1usize..777,
    ) {
        let mut acc = 0u32;
        for chunk in data.chunks(block) {
            acc = viper_formats::crc32_combine(
                acc,
                viper_formats::crc32(chunk),
                chunk.len() as u64,
            );
        }
        prop_assert_eq!(acc, viper_formats::crc32(&data));
    }
}
