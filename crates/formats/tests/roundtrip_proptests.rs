//! Property tests: every format round-trips arbitrary checkpoints exactly,
//! corruption never decodes successfully into a *different* checkpoint, and
//! `delta::apply(base, diff(base, new))` reconstructs `new` bitwise.

use proptest::prelude::*;
use viper_formats::{delta, Checkpoint, CheckpointFormat, H5Lite, ViperFormat};
use viper_tensor::Tensor;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (
        1usize..5,
        1usize..5,
        prop::collection::vec(-1000.0f32..1000.0, 0..25),
    )
        .prop_map(|(a, b, data)| {
            let n = a * b;
            let mut d = data;
            d.resize(n, 0.25);
            Tensor::from_vec(d, &[a, b]).unwrap()
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        "[a-z]{1,12}",
        0u64..1_000_000,
        prop::collection::vec(("[a-z/_]{1,20}", arb_tensor()), 0..6),
    )
        .prop_map(|(name, iter, tensors)| Checkpoint::new(name, iter, tensors))
}

/// Elements drawn as raw bit patterns, so NaNs (any payload), ±0.0,
/// infinities, and subnormals all appear — the values where `PartialEq`
/// and byte equality disagree.
fn arb_bits_tensor() -> impl Strategy<Value = Tensor> {
    (
        1usize..5,
        1usize..5,
        prop::collection::vec((0u32..=u32::MAX).prop_map(f32::from_bits), 0..25),
    )
        .prop_map(|(a, b, data)| {
            let n = a * b;
            let mut d = data;
            d.resize(n, f32::from_bits(0x8000_0000)); // pad with -0.0
            Tensor::from_vec(d, &[a, b]).unwrap()
        })
}

/// A fine-tuning-shaped pair: same tensor set, a random subset of tensors
/// mutated, and the new checkpoint's tensor order shuffled by rotation.
fn arb_finetune_pair() -> impl Strategy<Value = (Checkpoint, Checkpoint)> {
    (
        "[a-z]{1,8}",
        0u64..1_000_000,
        prop::collection::vec(
            (
                "t[a-z/_]{0,12}[0-9]",
                arb_bits_tensor(),
                (0u8..2).prop_map(|b| b == 1),
                arb_bits_tensor(),
            ),
            1..6,
        ),
        0usize..6,
    )
        .prop_map(|(name, iter, specs, rot)| {
            // Duplicate names would make diff/apply ambiguous; keep the
            // first occurrence of each.
            let mut seen = std::collections::HashSet::new();
            let mut base_tensors = Vec::new();
            let mut new_tensors = Vec::new();
            for (tname, tensor, mutate, replacement) in specs {
                if !seen.insert(tname.clone()) {
                    continue;
                }
                let new_tensor = if mutate { replacement } else { tensor.clone() };
                base_tensors.push((tname.clone(), tensor));
                new_tensors.push((tname, new_tensor));
            }
            let rot = rot % new_tensors.len().max(1);
            new_tensors.rotate_left(rot);
            (
                Checkpoint::new(name.clone(), iter, base_tensors),
                Checkpoint::new(name, iter + 1, new_tensors),
            )
        })
}

/// Bitwise checkpoint equality, keyed by tensor name (`apply` normalizes
/// to the base's tensor order by design, and `PartialEq` cannot see NaN
/// payloads or the sign of zero).
fn bits_equal(a: &Checkpoint, b: &Checkpoint) -> bool {
    let sorted = |c: &Checkpoint| {
        let mut v: Vec<(String, Tensor)> = c.tensors.clone();
        v.sort_by(|(x, _), (y, _)| x.cmp(y));
        v
    };
    a.model_name == b.model_name
        && a.iteration == b.iteration
        && a.tensors.len() == b.tensors.len()
        && sorted(a)
            .iter()
            .zip(&sorted(b))
            .all(|((an, at), (bn, bt))| {
                an == bn
                    && at.dims() == bt.dims()
                    && at
                        .as_slice()
                        .iter()
                        .zip(bt.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            })
}

proptest! {
    #[test]
    fn viper_format_roundtrips(ckpt in arb_checkpoint()) {
        let f = ViperFormat;
        prop_assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn h5lite_roundtrips(ckpt in arb_checkpoint()) {
        let f = H5Lite;
        prop_assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn h5lite_never_smaller_than_viper(ckpt in arb_checkpoint()) {
        prop_assert!(H5Lite.encode(&ckpt).len() >= ViperFormat.encode(&ckpt).len());
    }

    /// Any single-byte corruption either fails to decode or decodes to the
    /// original (CRC collisions are possible in theory but not with single
    /// byte flips over short streams).
    #[test]
    fn viper_format_detects_byte_flips(ckpt in arb_checkpoint(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let f = ViperFormat;
        let mut bytes = f.encode(&ckpt);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(f.decode(&bytes).is_err());
    }

    /// `apply(base, diff(base, new))` reconstructs `new` bitwise — including
    /// NaN payloads, -0.0, and tensor lists the trainer re-ordered.
    #[test]
    fn delta_roundtrip_reconstructs_bitwise(pair in arb_finetune_pair()) {
        let (base, new) = pair;
        let d = delta::diff(&base, &new).unwrap();
        let rebuilt = delta::apply(&base, &d).unwrap();
        prop_assert!(bits_equal(&rebuilt, &new));
        // Reconstruction preserves the base's tensor order, so a consumer's
        // installed layout never churns when the trainer shuffles names.
        let names =
            |c: &Checkpoint| c.tensors.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
        prop_assert_eq!(names(&rebuilt), names(&base));
    }

    /// The VIPD encoding round-trips losslessly: applying the decoded delta
    /// yields the same bits as applying the in-memory one. (Compared via
    /// re-apply, not `PartialEq`, which NaN payloads would defeat.)
    #[test]
    fn delta_encoding_roundtrips_bitwise(pair in arb_finetune_pair()) {
        let (base, new) = pair;
        let d = delta::diff(&base, &new).unwrap();
        let decoded = viper_formats::DeltaCheckpoint::decode(&d.encode()).unwrap();
        prop_assert_eq!(decoded.model_name.clone(), d.model_name.clone());
        prop_assert_eq!(decoded.base_iteration, d.base_iteration);
        prop_assert_eq!(decoded.iteration, d.iteration);
        let rebuilt = delta::apply(&base, &decoded).unwrap();
        prop_assert!(bits_equal(&rebuilt, &new));
    }

    #[test]
    fn encoded_size_estimates_track_reality(ckpt in arb_checkpoint()) {
        for f in [&ViperFormat as &dyn CheckpointFormat, &H5Lite] {
            let actual = f.encode(&ckpt).len() as i64;
            let predicted = f.encoded_size(ckpt.payload_bytes(), ckpt.ntensors()) as i64;
            // Estimates ignore exact name lengths and chunk fragmentation;
            // allow generous but bounded slack.
            prop_assert!((actual - predicted).abs() < 8192 + actual / 4,
                "{}: actual {actual} predicted {predicted}", f.name());
        }
    }
}
