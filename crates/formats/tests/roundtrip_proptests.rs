//! Property tests: every format round-trips arbitrary checkpoints exactly,
//! and corruption never decodes successfully into a *different* checkpoint.

use proptest::prelude::*;
use viper_formats::{Checkpoint, CheckpointFormat, H5Lite, ViperFormat};
use viper_tensor::Tensor;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (
        1usize..5,
        1usize..5,
        prop::collection::vec(-1000.0f32..1000.0, 0..25),
    )
        .prop_map(|(a, b, data)| {
            let n = a * b;
            let mut d = data;
            d.resize(n, 0.25);
            Tensor::from_vec(d, &[a, b]).unwrap()
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        "[a-z]{1,12}",
        0u64..1_000_000,
        prop::collection::vec(("[a-z/_]{1,20}", arb_tensor()), 0..6),
    )
        .prop_map(|(name, iter, tensors)| Checkpoint::new(name, iter, tensors))
}

proptest! {
    #[test]
    fn viper_format_roundtrips(ckpt in arb_checkpoint()) {
        let f = ViperFormat;
        prop_assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn h5lite_roundtrips(ckpt in arb_checkpoint()) {
        let f = H5Lite;
        prop_assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn h5lite_never_smaller_than_viper(ckpt in arb_checkpoint()) {
        prop_assert!(H5Lite.encode(&ckpt).len() >= ViperFormat.encode(&ckpt).len());
    }

    /// Any single-byte corruption either fails to decode or decodes to the
    /// original (CRC collisions are possible in theory but not with single
    /// byte flips over short streams).
    #[test]
    fn viper_format_detects_byte_flips(ckpt in arb_checkpoint(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let f = ViperFormat;
        let mut bytes = f.encode(&ckpt);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(f.decode(&bytes).is_err());
    }

    #[test]
    fn encoded_size_estimates_track_reality(ckpt in arb_checkpoint()) {
        for f in [&ViperFormat as &dyn CheckpointFormat, &H5Lite] {
            let actual = f.encode(&ckpt).len() as i64;
            let predicted = f.encoded_size(ckpt.payload_bytes(), ckpt.ntensors()) as i64;
            // Estimates ignore exact name lengths and chunk fragmentation;
            // allow generous but bounded slack.
            prop_assert!((actual - predicted).abs() < 8192 + actual / 4,
                "{}: actual {actual} predicted {predicted}", f.name());
        }
    }
}
