//! Property tests for the CRC32 kernel dispatch layer: every kernel the
//! host can run (hardware carry-less-multiply, slice-by-16, bytewise)
//! must produce identical digests on arbitrary inputs — empty, one byte,
//! unaligned views, split anywhere and recombined — and the runtime
//! dispatcher must honor the `VIPER_FORCE_PORTABLE_CRC` override so CI
//! can pin the portable path on hardware that would otherwise pick the
//! accelerated kernel.

use proptest::prelude::*;
use viper_formats::{
    active_kernel, crc32_bytewise, crc32_combine, crc32_parallel, crc32_with, Crc32, Crc32Kernel,
};

/// Whether this process was started with the portable-kernel override
/// (mirrors the dispatcher's own parse: set, non-empty, not "0").
fn available_kernels() -> Vec<Crc32Kernel> {
    [
        Crc32Kernel::Clmul,
        Crc32Kernel::Slice16,
        Crc32Kernel::Bytewise,
    ]
    .into_iter()
    .filter(|k| k.available())
    .collect()
}

fn forced_portable() -> bool {
    std::env::var("VIPER_FORCE_PORTABLE_CRC")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

proptest! {
    /// Every kernel available on this host computes the bytewise oracle's
    /// digest for arbitrary byte strings, including the empty one.
    #[test]
    fn kernels_match_bytewise_oracle(
        data in prop::collection::vec(0u8..=u8::MAX, 0..8192),
    ) {
        let want = crc32_bytewise(&data);
        for kernel in available_kernels() {
            prop_assert_eq!(
                crc32_with(kernel, &data),
                want,
                "kernel {} diverged on {} bytes",
                kernel.label(),
                data.len()
            );
        }
    }

    /// Unaligned starts: the hardware kernel loads 16-byte lanes, so every
    /// possible misalignment of the view's base pointer must still agree
    /// with the oracle (and with every other kernel).
    #[test]
    fn kernels_agree_on_unaligned_views(
        data in prop::collection::vec(0u8..=u8::MAX, 64..4096),
        offset in 0usize..16,
    ) {
        let view = &data[offset.min(data.len())..];
        let want = crc32_bytewise(view);
        for kernel in available_kernels() {
            prop_assert_eq!(
                crc32_with(kernel, view),
                want,
                "kernel {} diverged at offset {}",
                kernel.label(),
                offset
            );
        }
    }

    /// Split anywhere: a digest computed as two per-kernel halves folded
    /// with `crc32_combine` equals the oracle over the whole, for every
    /// kernel and every cut point — including cuts inside the hardware
    /// kernel's 64-byte fold blocks and its scalar tail.
    #[test]
    fn split_anywhere_recombines_to_oracle(
        data in prop::collection::vec(0u8..=u8::MAX, 0..4096),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = (((data.len() as f64) * split_frac) as usize).min(data.len());
        let (a, b) = data.split_at(split);
        let want = crc32_bytewise(&data);
        for kernel in available_kernels() {
            let combined =
                crc32_combine(crc32_with(kernel, a), crc32_with(kernel, b), b.len() as u64);
            prop_assert_eq!(
                combined,
                want,
                "kernel {} diverged at split {}",
                kernel.label(),
                split
            );
        }
    }

    /// The streaming state machine (which routes through the dispatched
    /// kernel) digests arbitrarily fragmented writes to the oracle value.
    #[test]
    fn streaming_fragments_match_oracle(
        data in prop::collection::vec(0u8..=u8::MAX, 0..4096),
        cuts in prop::collection::vec(0.0f64..=1.0, 0..8),
    ) {
        let mut points: Vec<usize> = cuts
            .iter()
            .map(|f| ((data.len() as f64) * f) as usize)
            .collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut state = Crc32::new();
        for w in points.windows(2) {
            state.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(state.finalize(), crc32_bytewise(&data));
    }
}

/// Edge lengths that straddle every kernel boundary: empty, one byte, the
/// 16-byte lane, the 64-byte fold block, and both sides of each.
#[test]
fn kernels_agree_on_boundary_lengths() {
    let data: Vec<u8> = (0..512u32)
        .map(|i| (i.wrapping_mul(97) >> 3) as u8)
        .collect();
    for len in [
        0usize, 1, 2, 15, 16, 17, 48, 63, 64, 65, 79, 80, 127, 128, 192, 256, 511,
    ] {
        let want = crc32_bytewise(&data[..len]);
        for kernel in available_kernels() {
            assert_eq!(
                crc32_with(kernel, &data[..len]),
                want,
                "kernel {} diverged at len {len}",
                kernel.label()
            );
        }
    }
}

/// The multi-block parallel path (dispatch + combine) on an input big
/// enough to actually engage it.
#[test]
fn parallel_crc_matches_oracle_on_large_input() {
    let data: Vec<u8> = (0..5 * (1 << 20) + 13usize)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect();
    assert_eq!(crc32_parallel(&data), crc32_bytewise(&data));
}

/// The dispatcher's contract: under `VIPER_FORCE_PORTABLE_CRC` the active
/// kernel is the portable slice-by-16 regardless of hardware; otherwise
/// it is one of the kernels the host actually supports. CI runs the suite
/// both ways; either way the choice must be internally consistent.
#[test]
fn dispatch_honors_portable_override() {
    let active = active_kernel();
    if forced_portable() {
        assert_eq!(
            active.label(),
            "slice16",
            "override must pin the portable kernel"
        );
    } else {
        assert!(
            available_kernels().contains(&active),
            "active kernel {} not in the host's available set",
            active.label()
        );
    }
}

/// Exercise the forced-fallback dispatch path even on runs that did not
/// set the override: re-run the dispatch assertion in a child process
/// with `VIPER_FORCE_PORTABLE_CRC=1`, so both sides of the ladder get
/// coverage from a single `cargo test` invocation.
#[test]
fn forced_fallback_subprocess_picks_slice16() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["dispatch_honors_portable_override", "--exact"])
        .env("VIPER_FORCE_PORTABLE_CRC", "1")
        .output()
        .expect("spawn test subprocess");
    assert!(
        out.status.success(),
        "forced-portable dispatch failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
