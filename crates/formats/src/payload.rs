//! Shared, immutable payload buffers with zero-copy subslicing.
//!
//! A serialized checkpoint is allocated exactly once — at
//! [`crate::CheckpointFormat::encode`] time — and then travels the whole
//! capture→stage→frame→send→install chain as [`Payload`] handles: an
//! `Arc`-backed view (`buffer`, `start`, `len`) that clones in O(1) and
//! subslices without touching the bytes. Chunk bodies, retransmit rounds,
//! storage-tier residents, and consumer installs all alias the same
//! allocation; the backing buffer is freed when the last view drops.
//!
//! `Payload` is deliberately immutable: every consumer of the delivery path
//! reads the same bytes, so a copy-on-write story is unnecessary and a
//! mutable alias would be a correctness hazard. Paths that must mutate
//! (fault injection's bit flips, multi-chunk reassembly) materialize an
//! owned `Vec<u8>` and account for it via the `bytes_copied` telemetry
//! counters (see DESIGN.md, "Payload ownership").

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable, immutable view into a shared byte buffer.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting an existing
/// `Vec<u8>` into `Arc<[u8]>` copies the bytes, while `Arc<Vec<u8>>` adopts
/// the allocation as-is — the whole point of this type.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Payload {
    /// An empty payload (no allocation beyond the shared empty buffer).
    pub fn empty() -> Self {
        Payload::from(Vec::new())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Zero-copy subview. Shares the backing allocation; only the window
    /// moves. Panics if the range is out of bounds, mirroring slice
    /// indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Payload {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "payload slice {start}..{end} out of bounds for length {}",
            self.len
        );
        Payload {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            len: end - start,
        }
    }

    /// Copy this view out into an owned vector. The one deliberate copy;
    /// callers on the delivery path account for it in `bytes_copied`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Number of strong references to the backing buffer. Used by tests to
    /// assert that retransmit rounds keep in-flight slices alive after the
    /// producer drops its handle.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// The backing allocation. Crate-internal: the encode arena parks a
    /// clone of this `Arc` so the buffer can be reclaimed for the next
    /// save once every outstanding view drops.
    pub(crate) fn backing(&self) -> &Arc<Vec<u8>> {
        &self.buf
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Payload {
            buf: Arc::new(v),
            start: 0,
            len,
        }
    }
}

impl From<Arc<Vec<u8>>> for Payload {
    fn from(buf: Arc<Vec<u8>>) -> Self {
        let len = buf.len();
        Payload { buf, start: 0, len }
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Self {
        Payload::from(s.to_vec())
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Payload({} bytes @ {}, {} refs)",
            self.len,
            self.start,
            Arc::strong_count(&self.buf)
        )
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_adopts_allocation() {
        let v = vec![1u8, 2, 3, 4];
        let ptr = v.as_ptr();
        let p = Payload::from(v);
        assert_eq!(p.as_slice().as_ptr(), ptr, "no copy on adoption");
        assert_eq!(p.len(), 4);
        assert_eq!(p, vec![1u8, 2, 3, 4]);
    }

    #[test]
    fn clone_and_slice_share_the_buffer() {
        let p = Payload::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let c = p.clone();
        let s = p.slice(2..6);
        assert_eq!(p.ref_count(), 3);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        // Slices point into the parent allocation.
        assert_eq!(s.as_slice().as_ptr(), unsafe {
            p.as_slice().as_ptr().add(2)
        });
        drop(c);
        drop(p);
        // The slice alone keeps the buffer alive.
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        assert_eq!(s.ref_count(), 1);
    }

    #[test]
    fn slice_of_slice_composes_offsets() {
        let p = Payload::from((0u8..32).collect::<Vec<_>>());
        let a = p.slice(8..24);
        let b = a.slice(4..8);
        assert_eq!(&b[..], &[12, 13, 14, 15]);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn slice_range_forms() {
        let p = Payload::from(vec![9u8; 10]);
        assert_eq!(p.slice(..).len(), 10);
        assert_eq!(p.slice(3..).len(), 7);
        assert_eq!(p.slice(..4).len(), 4);
        assert_eq!(p.slice(2..=5).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Payload::from(vec![0u8; 4]).slice(2..6);
    }

    #[test]
    fn empty_payload() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.to_vec(), Vec::<u8>::new());
    }

    #[test]
    fn equality_against_bytes() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p, [1u8, 2, 3][..]);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], p);
        assert_ne!(p, Payload::from(vec![1u8, 2, 4]));
        assert_eq!(p.slice(1..2), Payload::from(vec![2u8]));
    }

    #[test]
    fn from_arc_shares() {
        let arc = Arc::new(vec![5u8; 16]);
        let p = Payload::from(Arc::clone(&arc));
        assert_eq!(Arc::strong_count(&arc), 2);
        assert_eq!(p.as_slice().as_ptr(), arc.as_ptr());
    }
}
