//! # viper-formats
//!
//! Checkpoint serialization formats.
//!
//! The paper's baseline shares checkpoints through `h5py` (HDF5), and notes
//! that Viper beats it even on the same PFS tier because Viper "only writes
//! the model weights and closely related metadata into the file, avoiding
//! some unnecessary metadata added by h5py" (§5.3). This crate implements
//! both sides of that comparison:
//!
//! * [`ViperFormat`] — a lean binary layout: header, tensor directory,
//!   contiguous payloads, CRC32 integrity footer.
//! * [`H5Lite`] — an HDF5-flavoured layout with a superblock, per-dataset
//!   object headers, and chunked storage with per-chunk headers and
//!   alignment padding, reproducing h5py's structural overhead.
//!
//! Both formats round-trip exactly; they differ in encoded size and in the
//! number of metadata operations they cost on a storage tier
//! ([`CheckpointFormat::metadata_ops_factor`]).

#![warn(missing_docs)]

mod checkpoint;
mod crc;
mod encoder;
mod h5lite;
mod payload;
mod viper_format;

pub mod delta;
pub mod partial;
pub mod wire;

pub use checkpoint::{Checkpoint, FormatError};
pub use crc::{
    active_kernel, crc32, crc32_bytewise, crc32_combine, crc32_parallel, crc32_with, Crc32,
    Crc32Kernel, CrcShift,
};
pub use delta::DeltaCheckpoint;
pub use encoder::{EncodeArena, EncodedPayload, StreamMark, StreamingEncoder};
pub use h5lite::H5Lite;
pub use partial::TensorEntry;
pub use payload::Payload;
pub use viper_format::ViperFormat;
pub use wire::PayloadKind;

/// A checkpoint serialization format.
pub trait CheckpointFormat: Send + Sync {
    /// Short format name for reports (e.g. `"viper"`, `"h5py"`).
    fn name(&self) -> &'static str;

    /// Serialize a checkpoint.
    fn encode(&self, ckpt: &Checkpoint) -> Vec<u8>;

    /// Serialize a checkpoint into a [`StreamingEncoder`], producing bytes
    /// identical to [`encode`](Self::encode) while the encoder checksums
    /// them in the same pass. The default materializes through `encode`;
    /// formats on the hot path override it with a true streaming writer.
    fn encode_into(&self, ckpt: &Checkpoint, enc: &mut StreamingEncoder) {
        enc.put_bytes(&self.encode(ckpt));
        enc.absorb();
    }

    /// Deserialize and verify a checkpoint.
    fn decode(&self, bytes: &[u8]) -> Result<Checkpoint, FormatError>;

    /// How many metadata operations this format costs per tensor, relative
    /// to the lean format (1.0). HDF5-style files touch the superblock,
    /// object headers, and chunk b-trees for every dataset, multiplying the
    /// small-I/O cost on a PFS.
    fn metadata_ops_factor(&self) -> f64;

    /// Predicted encoded size for a payload of `payload_bytes` across
    /// `ntensors` tensors, without actually encoding. Used by the
    /// discrete-event simulator for paper-scale models.
    fn encoded_size(&self, payload_bytes: u64, ntensors: usize) -> u64;
}
