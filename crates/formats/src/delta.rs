//! Incremental (delta) checkpoints.
//!
//! Check-N-Run — cited by the paper as related work — "introduces
//! incremental checkpointing, capturing the differences since the last
//! checkpoint". This module implements that for Viper checkpoints: a
//! [`DeltaCheckpoint`] stores only the tensors that changed since a base
//! version plus the names of the unchanged ones, typically shrinking the
//! transfer during fine-tuning with frozen layers (the DStore/EvoStore
//! transfer-learning scenario).
//!
//! Wire layout mirrors the lean format:
//!
//! ```text
//! magic     : b"VIPD"
//! version   : u32 (= 1)
//! name      : string
//! base_iter : u64      iteration of the base checkpoint
//! iteration : u64      iteration of the reconstructed checkpoint
//! nchanged  : u32, then per tensor: name, rank, dims, payload
//! nsame     : u32, then per tensor: name
//! crc32     : u32
//! ```

use crate::checkpoint::{bytes_to_f32s, put_f32s, put_string, put_u32, put_u64, Reader};
use crate::{crc32, Checkpoint, FormatError, StreamingEncoder};
use viper_tensor::Tensor;

const MAGIC: &[u8; 4] = b"VIPD";
const VERSION: u32 = 1;

/// The difference between two checkpoints of the same model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaCheckpoint {
    /// Model name.
    pub model_name: String,
    /// Iteration of the base checkpoint this delta applies to.
    pub base_iteration: u64,
    /// Iteration of the checkpoint the delta reconstructs.
    pub iteration: u64,
    /// Tensors that changed, with their new values.
    pub changed: Vec<(String, Tensor)>,
    /// Names of tensors identical to the base.
    pub unchanged: Vec<String>,
}

impl DeltaCheckpoint {
    /// Fraction of tensors carried by the delta (1.0 = nothing saved).
    pub fn changed_fraction(&self) -> f64 {
        let total = self.changed.len() + self.unchanged.len();
        if total == 0 {
            0.0
        } else {
            self.changed.len() as f64 / total as f64
        }
    }

    /// Payload bytes the delta carries.
    pub fn payload_bytes(&self) -> u64 {
        self.changed.iter().map(|(_, t)| t.byte_len() as u64).sum()
    }

    /// Serialize the delta.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() as usize + 256);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_string(&mut out, &self.model_name);
        put_u64(&mut out, self.base_iteration);
        put_u64(&mut out, self.iteration);
        put_u32(&mut out, self.changed.len() as u32);
        for (name, tensor) in &self.changed {
            put_string(&mut out, name);
            put_u32(&mut out, tensor.dims().len() as u32);
            for &d in tensor.dims() {
                put_u64(&mut out, d as u64);
            }
            put_f32s(&mut out, tensor.as_slice());
        }
        put_u32(&mut out, self.unchanged.len() as u32);
        for name in &self.unchanged {
            put_string(&mut out, name);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Streaming twin of [`encode`](Self::encode): writes byte-identical
    /// output into a [`StreamingEncoder`], checksumming each changed tensor
    /// right after it lands and deriving the CRC footer algebraically — so
    /// a delta framed behind a wire envelope is still encoded in one pass.
    pub fn encode_into(&self, enc: &mut StreamingEncoder) {
        let mark = enc.mark();
        enc.put_bytes(MAGIC);
        enc.put_u32(VERSION);
        enc.put_string(&self.model_name);
        enc.put_u64(self.base_iteration);
        enc.put_u64(self.iteration);
        enc.put_u32(self.changed.len() as u32);
        for (name, tensor) in &self.changed {
            enc.put_string(name);
            enc.put_u32(tensor.dims().len() as u32);
            for &d in tensor.dims() {
                enc.put_u64(d as u64);
            }
            enc.put_f32s(tensor.as_slice());
            enc.absorb();
        }
        enc.put_u32(self.unchanged.len() as u32);
        for name in &self.unchanged {
            enc.put_string(name);
        }
        let crc = enc.crc_since(mark);
        enc.put_u32(crc);
    }

    /// Deserialize and verify a delta.
    pub fn decode(bytes: &[u8]) -> Result<Self, FormatError> {
        if bytes.len() < 4 {
            return Err(FormatError::Truncated {
                context: "crc footer",
            });
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(FormatError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(body);
        if r.take(4, "magic")? != MAGIC {
            return Err(FormatError::BadMagic);
        }
        if r.u32("version")? != VERSION {
            return Err(FormatError::BadMagic);
        }
        let model_name = r.string("model name")?;
        let base_iteration = r.u64("base iteration")?;
        let iteration = r.u64("iteration")?;
        let nchanged = r.u32("changed count")? as usize;
        let mut changed = Vec::with_capacity(nchanged);
        for _ in 0..nchanged {
            let name = r.string("tensor name")?;
            let rank = r.u32("tensor rank")? as usize;
            if rank > 8 {
                return Err(FormatError::Corrupt(format!("unreasonable rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64("tensor dim")? as usize);
            }
            let n: usize = dims.iter().product();
            let data = bytes_to_f32s(r.take(n * 4, "tensor payload")?)?;
            let tensor =
                Tensor::from_vec(data, &dims).map_err(|e| FormatError::Corrupt(e.to_string()))?;
            changed.push((name, tensor));
        }
        let nsame = r.u32("unchanged count")? as usize;
        let mut unchanged = Vec::with_capacity(nsame);
        for _ in 0..nsame {
            unchanged.push(r.string("unchanged name")?);
        }
        Ok(DeltaCheckpoint {
            model_name,
            base_iteration,
            iteration,
            changed,
            unchanged,
        })
    }
}

/// Compute the delta from `base` to `new`. Both must snapshot the same
/// model with the same tensor set (names may reorder; shapes must match
/// per name).
pub fn diff(base: &Checkpoint, new: &Checkpoint) -> Result<DeltaCheckpoint, FormatError> {
    if base.model_name != new.model_name {
        return Err(FormatError::Corrupt(format!(
            "cannot diff {} against {}",
            new.model_name, base.model_name
        )));
    }
    if base.ntensors() != new.ntensors() {
        return Err(FormatError::Corrupt(format!(
            "tensor count changed: {} -> {}",
            base.ntensors(),
            new.ntensors()
        )));
    }
    // Index the base once (the old per-tensor linear scan was O(n·m)) and
    // compare all tensors' bit patterns in parallel — on multi-hundred-MiB
    // checkpoints the bitwise compare dominates diff cost. Flags: 0 =
    // absent from base, 1 = changed, 2 = unchanged.
    let base_by_name: std::collections::HashMap<&str, &Tensor> =
        base.tensors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut flags = vec![0u8; new.tensors.len()];
    {
        use rayon::prelude::*;
        flags.par_iter_mut().enumerate().for_each(|(i, flag)| {
            let (name, tensor) = &new.tensors[i];
            *flag = match base_by_name.get(name.as_str()) {
                None => 0,
                Some(bt) if bits_equal(bt, tensor) => 2,
                Some(_) => 1,
            };
        });
    }
    let mut changed = Vec::new();
    let mut unchanged = Vec::new();
    for (flag, (name, tensor)) in flags.iter().zip(&new.tensors) {
        match flag {
            0 => {
                return Err(FormatError::Corrupt(format!(
                    "tensor {name} absent from base"
                )))
            }
            1 => changed.push((name.clone(), tensor.clone())),
            _ => unchanged.push(name.clone()),
        }
    }
    Ok(DeltaCheckpoint {
        model_name: new.model_name.clone(),
        base_iteration: base.iteration,
        iteration: new.iteration,
        changed,
        unchanged,
    })
}

/// Bitwise tensor equality. Reconstruction must be *byte*-identical, so the
/// comparison is on f32 bit patterns, not `PartialEq`: `0.0 == -0.0` would
/// hide a sign-bit change, and `NaN != NaN` would mark every NaN-bearing
/// tensor as changed forever.
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Reconstruct the new checkpoint from `base` and `delta`.
pub fn apply(base: &Checkpoint, delta: &DeltaCheckpoint) -> Result<Checkpoint, FormatError> {
    if base.model_name != delta.model_name {
        return Err(FormatError::Corrupt(format!(
            "delta for {} applied to {}",
            delta.model_name, base.model_name
        )));
    }
    if base.iteration != delta.base_iteration {
        return Err(FormatError::Corrupt(format!(
            "delta expects base iteration {}, got {}",
            delta.base_iteration, base.iteration
        )));
    }
    // Index both sides once so the reconstruction loop is O(n), not O(n·m).
    let changed: std::collections::HashMap<&str, &Tensor> =
        delta.changed.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let unchanged: std::collections::HashSet<&str> =
        delta.unchanged.iter().map(String::as_str).collect();
    let mut tensors = Vec::with_capacity(delta.changed.len() + delta.unchanged.len());
    // Preserve the base's tensor order (layer order matters to consumers).
    for (name, base_tensor) in &base.tensors {
        if let Some(&t) = changed.get(name.as_str()) {
            tensors.push((name.clone(), t.clone()));
        } else if unchanged.contains(name.as_str()) {
            tensors.push((name.clone(), base_tensor.clone()));
        } else {
            return Err(FormatError::Corrupt(format!(
                "tensor {name} mentioned by neither side of the delta"
            )));
        }
    }
    Ok(Checkpoint::new(
        delta.model_name.clone(),
        delta.iteration,
        tensors,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Checkpoint {
        Checkpoint::new(
            "m",
            100,
            vec![
                ("frozen/kernel".into(), Tensor::full(&[50], 1.0)),
                ("head/kernel".into(), Tensor::full(&[10], 2.0)),
                ("head/bias".into(), Tensor::full(&[10], 0.0)),
            ],
        )
    }

    fn fine_tuned() -> Checkpoint {
        // Transfer-learning shape: the frozen backbone is untouched.
        Checkpoint::new(
            "m",
            150,
            vec![
                ("frozen/kernel".into(), Tensor::full(&[50], 1.0)),
                ("head/kernel".into(), Tensor::full(&[10], 2.5)),
                ("head/bias".into(), Tensor::full(&[10], -0.1)),
            ],
        )
    }

    #[test]
    fn diff_identifies_changed_tensors() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        assert_eq!(d.changed.len(), 2);
        assert_eq!(d.unchanged, vec!["frozen/kernel".to_string()]);
        assert!((d.changed_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.base_iteration, 100);
        assert_eq!(d.iteration, 150);
    }

    #[test]
    fn apply_reconstructs_exactly() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let rebuilt = apply(&base(), &d).unwrap();
        assert_eq!(rebuilt, fine_tuned());
    }

    #[test]
    fn delta_of_identical_checkpoints_is_empty() {
        let mut same = base();
        same.iteration = 101;
        let d = diff(&base(), &same).unwrap();
        assert!(d.changed.is_empty());
        assert_eq!(d.changed_fraction(), 0.0);
        assert_eq!(d.payload_bytes(), 0);
        assert_eq!(apply(&base(), &d).unwrap(), same);
    }

    #[test]
    fn delta_transfers_less_than_full_checkpoint() {
        use crate::{CheckpointFormat, ViperFormat};
        let d = diff(&base(), &fine_tuned()).unwrap();
        let delta_bytes = d.encode().len();
        let full_bytes = ViperFormat.encode(&fine_tuned()).len();
        assert!(
            delta_bytes < full_bytes / 2,
            "{delta_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let decoded = DeltaCheckpoint::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn streaming_encode_is_byte_identical() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let legacy = d.encode();
        for chunk_bytes in [0u64, 16, 64, 1 << 20] {
            let mut enc = StreamingEncoder::new(chunk_bytes);
            d.encode_into(&mut enc);
            assert_eq!(
                enc.finish().payload.as_slice(),
                &legacy[..],
                "chunk_bytes {chunk_bytes}"
            );
        }
    }

    #[test]
    fn decode_detects_corruption() {
        let mut bytes = diff(&base(), &fine_tuned()).unwrap().encode();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        assert!(DeltaCheckpoint::decode(&bytes).is_err());
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let mut wrong = base();
        wrong.iteration = 99;
        assert!(apply(&wrong, &d).is_err());
        let mut other_model = base();
        other_model.model_name = "other".into();
        assert!(apply(&other_model, &d).is_err());
    }

    /// Bitwise checkpoint equality for tests with NaN payloads, where
    /// `PartialEq` is useless.
    fn same_bits(a: &Checkpoint, b: &Checkpoint) -> bool {
        a.model_name == b.model_name
            && a.iteration == b.iteration
            && a.tensors.len() == b.tensors.len()
            && a.tensors
                .iter()
                .zip(&b.tensors)
                .all(|((an, at), (bn, bt))| an == bn && super::bits_equal(at, bt))
    }

    #[test]
    fn diff_sees_sign_bit_of_zero() {
        let mut new = base();
        new.iteration = 101;
        // 0.0 -> -0.0 compares equal under PartialEq but is a real byte
        // change; the delta must carry it.
        new.tensors[2].1 = Tensor::full(&[10], -0.0);
        let d = diff(&base(), &new).unwrap();
        assert_eq!(d.changed.len(), 1, "{d:?}");
        assert_eq!(d.changed[0].0, "head/bias");
        let rebuilt = apply(&base(), &d).unwrap();
        assert!(same_bits(&rebuilt, &new));
        assert!(rebuilt.tensors[2].1.as_slice()[0].is_sign_negative());
    }

    #[test]
    fn diff_treats_identical_nans_as_unchanged() {
        let mut old = base();
        old.tensors[0].1 = Tensor::full(&[50], f32::NAN);
        let mut new = old.clone();
        new.iteration = 101;
        let d = diff(&old, &new).unwrap();
        assert!(
            d.changed.is_empty(),
            "identical NaN payloads must not be resent: {d:?}"
        );
        assert!(same_bits(&apply(&old, &d).unwrap(), &new));
    }

    #[test]
    fn diff_distinguishes_nan_payloads() {
        let mut old = base();
        old.tensors[0].1 = Tensor::full(&[50], f32::from_bits(0x7fc0_0000));
        let mut new = old.clone();
        new.iteration = 101;
        // A different NaN bit pattern is a change.
        new.tensors[0].1 = Tensor::full(&[50], f32::from_bits(0x7fc0_0001));
        let d = diff(&old, &new).unwrap();
        assert_eq!(d.changed.len(), 1);
        assert!(same_bits(&apply(&old, &d).unwrap(), &new));
    }

    #[test]
    fn apply_handles_reordered_delta_entries() {
        let d0 = diff(&base(), &fine_tuned()).unwrap();
        // The changed list arriving in any order must not matter.
        let mut d = d0.clone();
        d.changed.reverse();
        let rebuilt = apply(&base(), &d).unwrap();
        assert_eq!(rebuilt, fine_tuned());
        // Reconstruction preserves the *base's* tensor order.
        let names: Vec<&str> = rebuilt.tensors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["frozen/kernel", "head/kernel", "head/bias"]);
    }

    #[test]
    fn diff_rejects_mismatched_models() {
        let mut renamed = fine_tuned();
        renamed.model_name = "other".into();
        assert!(diff(&base(), &renamed).is_err());

        let mut extra = fine_tuned();
        extra
            .tensors
            .push(("new/tensor".into(), Tensor::zeros(&[1])));
        assert!(diff(&base(), &extra).is_err());

        let mut swapped = fine_tuned();
        swapped.tensors[0].0 = "unknown/kernel".into();
        assert!(diff(&base(), &swapped).is_err());
    }
}
