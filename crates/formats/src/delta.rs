//! Incremental (delta) checkpoints.
//!
//! Check-N-Run — cited by the paper as related work — "introduces
//! incremental checkpointing, capturing the differences since the last
//! checkpoint". This module implements that for Viper checkpoints: a
//! [`DeltaCheckpoint`] stores only the tensors that changed since a base
//! version plus the names of the unchanged ones, typically shrinking the
//! transfer during fine-tuning with frozen layers (the DStore/EvoStore
//! transfer-learning scenario).
//!
//! Wire layout mirrors the lean format:
//!
//! ```text
//! magic     : b"VIPD"
//! version   : u32 (= 1)
//! name      : string
//! base_iter : u64      iteration of the base checkpoint
//! iteration : u64      iteration of the reconstructed checkpoint
//! nchanged  : u32, then per tensor: name, rank, dims, payload
//! nsame     : u32, then per tensor: name
//! crc32     : u32
//! ```

use crate::checkpoint::{bytes_to_f32s, put_f32s, put_string, put_u32, put_u64, Reader};
use crate::encoder::StreamMark;
use crate::{crc32, Checkpoint, FormatError, StreamingEncoder};
use viper_tensor::Tensor;

const MAGIC: &[u8; 4] = b"VIPD";
const VERSION: u32 = 1;

/// The difference between two checkpoints of the same model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaCheckpoint {
    /// Model name.
    pub model_name: String,
    /// Iteration of the base checkpoint this delta applies to.
    pub base_iteration: u64,
    /// Iteration of the checkpoint the delta reconstructs.
    pub iteration: u64,
    /// Tensors that changed, with their new values.
    pub changed: Vec<(String, Tensor)>,
    /// Names of tensors identical to the base.
    pub unchanged: Vec<String>,
}

impl DeltaCheckpoint {
    /// Fraction of tensors carried by the delta (1.0 = nothing saved).
    pub fn changed_fraction(&self) -> f64 {
        let total = self.changed.len() + self.unchanged.len();
        if total == 0 {
            0.0
        } else {
            self.changed.len() as f64 / total as f64
        }
    }

    /// Payload bytes the delta carries.
    pub fn payload_bytes(&self) -> u64 {
        self.changed.iter().map(|(_, t)| t.byte_len() as u64).sum()
    }

    /// Serialize the delta.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() as usize + 256);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_string(&mut out, &self.model_name);
        put_u64(&mut out, self.base_iteration);
        put_u64(&mut out, self.iteration);
        put_u32(&mut out, self.changed.len() as u32);
        for (name, tensor) in &self.changed {
            put_string(&mut out, name);
            put_u32(&mut out, tensor.dims().len() as u32);
            for &d in tensor.dims() {
                put_u64(&mut out, d as u64);
            }
            put_f32s(&mut out, tensor.as_slice());
        }
        put_u32(&mut out, self.unchanged.len() as u32);
        for name in &self.unchanged {
            put_string(&mut out, name);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Streaming twin of [`encode`](Self::encode): writes byte-identical
    /// output into a [`StreamingEncoder`], checksumming each changed tensor
    /// right after it lands and deriving the CRC footer algebraically — so
    /// a delta framed behind a wire envelope is still encoded in one pass.
    pub fn encode_into(&self, enc: &mut StreamingEncoder) {
        let mark = enc.mark();
        enc.put_bytes(MAGIC);
        enc.put_u32(VERSION);
        enc.put_string(&self.model_name);
        enc.put_u64(self.base_iteration);
        enc.put_u64(self.iteration);
        enc.put_u32(self.changed.len() as u32);
        for (name, tensor) in &self.changed {
            enc.put_string(name);
            enc.put_u32(tensor.dims().len() as u32);
            for &d in tensor.dims() {
                enc.put_u64(d as u64);
            }
            enc.put_f32s(tensor.as_slice());
            enc.absorb();
        }
        enc.put_u32(self.unchanged.len() as u32);
        for name in &self.unchanged {
            enc.put_string(name);
        }
        let crc = enc.crc_since(mark);
        enc.put_u32(crc);
    }

    /// Deserialize and verify a delta.
    pub fn decode(bytes: &[u8]) -> Result<Self, FormatError> {
        if bytes.len() < 4 {
            return Err(FormatError::Truncated {
                context: "crc footer",
            });
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(FormatError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(body);
        if r.take(4, "magic")? != MAGIC {
            return Err(FormatError::BadMagic);
        }
        if r.u32("version")? != VERSION {
            return Err(FormatError::BadMagic);
        }
        let model_name = r.string("model name")?;
        let base_iteration = r.u64("base iteration")?;
        let iteration = r.u64("iteration")?;
        let nchanged = r.u32("changed count")? as usize;
        let mut changed = Vec::with_capacity(nchanged);
        for _ in 0..nchanged {
            let name = r.string("tensor name")?;
            let rank = r.u32("tensor rank")? as usize;
            if rank > 8 {
                return Err(FormatError::Corrupt(format!("unreasonable rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64("tensor dim")? as usize);
            }
            let n: usize = dims.iter().product();
            let data = bytes_to_f32s(r.take(n * 4, "tensor payload")?)?;
            let tensor =
                Tensor::from_vec(data, &dims).map_err(|e| FormatError::Corrupt(e.to_string()))?;
            changed.push((name, tensor));
        }
        let nsame = r.u32("unchanged count")? as usize;
        let mut unchanged = Vec::with_capacity(nsame);
        for _ in 0..nsame {
            unchanged.push(r.string("unchanged name")?);
        }
        Ok(DeltaCheckpoint {
            model_name,
            base_iteration,
            iteration,
            changed,
            unchanged,
        })
    }
}

/// Compute the delta from `base` to `new`. Both must snapshot the same
/// model with the same tensor set (names may reorder; shapes must match
/// per name).
pub fn diff(base: &Checkpoint, new: &Checkpoint) -> Result<DeltaCheckpoint, FormatError> {
    if base.model_name != new.model_name {
        return Err(FormatError::Corrupt(format!(
            "cannot diff {} against {}",
            new.model_name, base.model_name
        )));
    }
    if base.ntensors() != new.ntensors() {
        return Err(FormatError::Corrupt(format!(
            "tensor count changed: {} -> {}",
            base.ntensors(),
            new.ntensors()
        )));
    }
    // Index the base once (the old per-tensor linear scan was O(n·m)) and
    // compare all tensors' bit patterns in parallel — on multi-hundred-MiB
    // checkpoints the bitwise compare dominates diff cost. Flags: 0 =
    // absent from base, 1 = changed, 2 = unchanged.
    let base_by_name: std::collections::HashMap<&str, &Tensor> =
        base.tensors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut flags = vec![0u8; new.tensors.len()];
    {
        use rayon::prelude::*;
        flags.par_iter_mut().enumerate().for_each(|(i, flag)| {
            let (name, tensor) = &new.tensors[i];
            *flag = match base_by_name.get(name.as_str()) {
                None => 0,
                Some(bt) if bits_equal(bt, tensor) => 2,
                Some(_) => 1,
            };
        });
    }
    let mut changed = Vec::new();
    let mut unchanged = Vec::new();
    for (flag, (name, tensor)) in flags.iter().zip(&new.tensors) {
        match flag {
            0 => {
                return Err(FormatError::Corrupt(format!(
                    "tensor {name} absent from base"
                )))
            }
            1 => changed.push((name.clone(), tensor.clone())),
            _ => unchanged.push(name.clone()),
        }
    }
    Ok(DeltaCheckpoint {
        model_name: new.model_name.clone(),
        base_iteration: base.iteration,
        iteration: new.iteration,
        changed,
        unchanged,
    })
}

/// A streaming writer for the VIPD delta wire form: emits the exact bytes
/// of [`DeltaCheckpoint::encode`] into a [`StreamingEncoder`] one changed
/// tensor at a time, without ever materializing a `DeltaCheckpoint` or an
/// intermediate byte buffer. The caller supplies the changed/unchanged
/// counts up front (the wire layout stores them before the payloads), then
/// feeds each changed tensor with [`changed`](Self::changed) and closes
/// with [`finish`](Self::finish), which writes the unchanged-name trailer
/// and derives the CRC footer from the encoder's running checksum.
///
/// [`diff_into`] drives this for the producer's send path; the type is
/// public so other emitters (e.g. synthetic-delta generators in benches)
/// can target the same wire form.
pub struct DiffSink<'a> {
    enc: &'a mut StreamingEncoder,
    mark: StreamMark,
    nchanged: u32,
    emitted: u32,
}

impl<'a> DiffSink<'a> {
    /// Open the delta stream: writes the VIPD header through the changed
    /// count. `nchanged` changed tensors must follow.
    pub fn begin(
        enc: &'a mut StreamingEncoder,
        model_name: &str,
        base_iteration: u64,
        iteration: u64,
        nchanged: u32,
    ) -> Self {
        let mark = enc.mark();
        enc.put_bytes(MAGIC);
        enc.put_u32(VERSION);
        enc.put_string(model_name);
        enc.put_u64(base_iteration);
        enc.put_u64(iteration);
        enc.put_u32(nchanged);
        DiffSink {
            enc,
            mark,
            nchanged,
            emitted: 0,
        }
    }

    /// Emit one changed tensor (name, shape, payload), checksummed as it
    /// lands.
    pub fn changed(&mut self, name: &str, tensor: &Tensor) {
        self.emitted += 1;
        self.enc.put_string(name);
        self.enc.put_u32(tensor.dims().len() as u32);
        for &d in tensor.dims() {
            self.enc.put_u64(d as u64);
        }
        self.enc.put_f32s(tensor.as_slice());
        self.enc.absorb();
    }

    /// Close the stream: writes the unchanged-name trailer and the CRC
    /// footer. Panics if the number of [`changed`](Self::changed) calls
    /// does not match the `nchanged` promised to [`begin`](Self::begin) —
    /// the count is already on the wire, so a mismatch is an encoding bug,
    /// not a recoverable condition.
    pub fn finish<'n>(self, unchanged: impl ExactSizeIterator<Item = &'n str>) {
        assert_eq!(
            self.emitted, self.nchanged,
            "DiffSink: promised {} changed tensors, emitted {}",
            self.nchanged, self.emitted
        );
        self.enc.put_u32(unchanged.len() as u32);
        for name in unchanged {
            self.enc.put_string(name);
        }
        let crc = self.enc.crc_since(self.mark);
        self.enc.put_u32(crc);
    }
}

/// What [`diff_into`] found, for telemetry and size accounting — the
/// streaming path never materializes a [`DeltaCheckpoint`] to ask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffStats {
    /// Tensors whose payload changed (encoded into the stream).
    pub nchanged: usize,
    /// Tensors identical to the base (only their names are encoded).
    pub nunchanged: usize,
    /// Payload bytes carried by the changed tensors.
    pub changed_bytes: u64,
}

/// Streaming twin of [`diff`] ∘ [`DeltaCheckpoint::encode_into`]: computes
/// the delta from `base` to `new` and writes its wire form directly into
/// `enc`, byte-identical to encoding the materialized delta, without
/// cloning a single tensor or building an intermediate buffer.
///
/// The compare pass is still O(N) over both checkpoints — deciding that a
/// tensor is unchanged requires reading it — but it runs as block-wise
/// byte comparison ([`Tensor::as_bytes`], `memcmp`-class) instead of
/// per-lane float compares, and everything after it is O(ε): only changed
/// payloads are encoded, and the encoder checksums them in the same pass.
/// On an ε-sized delta of an N-byte checkpoint the send path therefore
/// does O(N) reads but O(ε) allocation and encode work.
pub fn diff_into(
    base: &Checkpoint,
    new: &Checkpoint,
    enc: &mut StreamingEncoder,
) -> Result<DiffStats, FormatError> {
    let flags = diff_flags(base, new)?;
    let mut stats = DiffStats {
        nchanged: 0,
        nunchanged: 0,
        changed_bytes: 0,
    };
    for (flag, (_, tensor)) in flags.iter().zip(&new.tensors) {
        if *flag == 1 {
            stats.nchanged += 1;
            stats.changed_bytes += tensor.byte_len() as u64;
        } else {
            stats.nunchanged += 1;
        }
    }
    let mut sink = DiffSink::begin(
        enc,
        &new.model_name,
        base.iteration,
        new.iteration,
        stats.nchanged as u32,
    );
    for (flag, (name, tensor)) in flags.iter().zip(&new.tensors) {
        if *flag == 1 {
            sink.changed(name, tensor);
        }
    }
    sink.finish(
        flags
            .iter()
            .zip(&new.tensors)
            .filter(|(f, _)| **f == 2)
            .map(|(_, (name, _))| name.as_str())
            .collect::<Vec<_>>()
            .into_iter(),
    );
    Ok(stats)
}

/// Shared compare pass: per-tensor change flags for `new` against `base`
/// (1 = changed, 2 = unchanged), or an error if the tensor sets differ.
/// The comparison runs on raw byte views in parallel blocks — bit-pattern
/// equality of f32 data *is* byte equality, so `memcmp`-class compares
/// give the same answer as per-lane `to_bits` checks at a fraction of the
/// cost, with the NaN/negative-zero semantics unchanged.
fn diff_flags(base: &Checkpoint, new: &Checkpoint) -> Result<Vec<u8>, FormatError> {
    if base.model_name != new.model_name {
        return Err(FormatError::Corrupt(format!(
            "cannot diff {} against {}",
            new.model_name, base.model_name
        )));
    }
    if base.ntensors() != new.ntensors() {
        return Err(FormatError::Corrupt(format!(
            "tensor count changed: {} -> {}",
            base.ntensors(),
            new.ntensors()
        )));
    }
    let base_by_name: std::collections::HashMap<&str, &Tensor> =
        base.tensors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut flags = vec![0u8; new.tensors.len()];
    {
        use rayon::prelude::*;
        flags.par_iter_mut().enumerate().for_each(|(i, flag)| {
            let (name, tensor) = &new.tensors[i];
            *flag = match base_by_name.get(name.as_str()) {
                None => 0,
                Some(bt) if bt.dims() == tensor.dims() && bt.as_bytes() == tensor.as_bytes() => 2,
                Some(_) => 1,
            };
        });
    }
    if let Some(pos) = flags.iter().position(|&f| f == 0) {
        return Err(FormatError::Corrupt(format!(
            "tensor {} absent from base",
            new.tensors[pos].0
        )));
    }
    Ok(flags)
}

/// Bitwise tensor equality. Reconstruction must be *byte*-identical, so the
/// comparison is on f32 bit patterns, not `PartialEq`: `0.0 == -0.0` would
/// hide a sign-bit change, and `NaN != NaN` would mark every NaN-bearing
/// tensor as changed forever.
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Reconstruct the new checkpoint from `base` and `delta`.
pub fn apply(base: &Checkpoint, delta: &DeltaCheckpoint) -> Result<Checkpoint, FormatError> {
    if base.model_name != delta.model_name {
        return Err(FormatError::Corrupt(format!(
            "delta for {} applied to {}",
            delta.model_name, base.model_name
        )));
    }
    if base.iteration != delta.base_iteration {
        return Err(FormatError::Corrupt(format!(
            "delta expects base iteration {}, got {}",
            delta.base_iteration, base.iteration
        )));
    }
    // Index both sides once so the reconstruction loop is O(n), not O(n·m).
    let changed: std::collections::HashMap<&str, &Tensor> =
        delta.changed.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let unchanged: std::collections::HashSet<&str> =
        delta.unchanged.iter().map(String::as_str).collect();
    let mut tensors = Vec::with_capacity(delta.changed.len() + delta.unchanged.len());
    // Preserve the base's tensor order (layer order matters to consumers).
    for (name, base_tensor) in &base.tensors {
        if let Some(&t) = changed.get(name.as_str()) {
            tensors.push((name.clone(), t.clone()));
        } else if unchanged.contains(name.as_str()) {
            tensors.push((name.clone(), base_tensor.clone()));
        } else {
            return Err(FormatError::Corrupt(format!(
                "tensor {name} mentioned by neither side of the delta"
            )));
        }
    }
    Ok(Checkpoint::new(
        delta.model_name.clone(),
        delta.iteration,
        tensors,
    ))
}

/// Allocation accounting from [`apply_owned`]: how many tensors were moved
/// into the reconstruction (zero new allocations) versus copied out of the
/// base. The borrowed [`apply`] copies *every* tensor
/// (`moved + copied` of them); the drop to `copied` is the win this
/// counter proves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Changed tensors moved out of the delta — allocation reused as-is.
    pub tensors_moved: usize,
    /// Unchanged tensors cloned from the base (the base stays live behind
    /// an `Arc` on the consumer, so its allocations cannot be stolen).
    pub tensors_copied: usize,
}

/// Reconstruct the new checkpoint from `base` and an *owned* `delta`.
///
/// The consumer decodes each delta from the wire and owns it, so the
/// changed tensors' allocations can move straight into the reconstructed
/// checkpoint instead of being cloned the way [`apply`] must — for a
/// mostly-changed delta that eliminates nearly all reconstruction copies
/// (and for the frozen-backbone case it costs nothing: unchanged tensors
/// were never in the delta). Validation and ordering semantics are
/// identical to [`apply`]; the extra [`ApplyStats`] reports the move/copy
/// split.
pub fn apply_owned(
    base: &Checkpoint,
    delta: DeltaCheckpoint,
) -> Result<(Checkpoint, ApplyStats), FormatError> {
    if base.model_name != delta.model_name {
        return Err(FormatError::Corrupt(format!(
            "delta for {} applied to {}",
            delta.model_name, base.model_name
        )));
    }
    if base.iteration != delta.base_iteration {
        return Err(FormatError::Corrupt(format!(
            "delta expects base iteration {}, got {}",
            delta.base_iteration, base.iteration
        )));
    }
    let mut changed: std::collections::HashMap<String, Tensor> =
        delta.changed.into_iter().collect();
    let unchanged: std::collections::HashSet<&str> =
        delta.unchanged.iter().map(String::as_str).collect();
    let mut stats = ApplyStats::default();
    let mut tensors = Vec::with_capacity(changed.len() + unchanged.len());
    // Preserve the base's tensor order (layer order matters to consumers).
    for (name, base_tensor) in &base.tensors {
        if let Some(t) = changed.remove(name.as_str()) {
            stats.tensors_moved += 1;
            tensors.push((name.clone(), t));
        } else if unchanged.contains(name.as_str()) {
            stats.tensors_copied += 1;
            tensors.push((name.clone(), base_tensor.clone()));
        } else {
            return Err(FormatError::Corrupt(format!(
                "tensor {name} mentioned by neither side of the delta"
            )));
        }
    }
    Ok((
        Checkpoint::new(delta.model_name, delta.iteration, tensors),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Checkpoint {
        Checkpoint::new(
            "m",
            100,
            vec![
                ("frozen/kernel".into(), Tensor::full(&[50], 1.0)),
                ("head/kernel".into(), Tensor::full(&[10], 2.0)),
                ("head/bias".into(), Tensor::full(&[10], 0.0)),
            ],
        )
    }

    fn fine_tuned() -> Checkpoint {
        // Transfer-learning shape: the frozen backbone is untouched.
        Checkpoint::new(
            "m",
            150,
            vec![
                ("frozen/kernel".into(), Tensor::full(&[50], 1.0)),
                ("head/kernel".into(), Tensor::full(&[10], 2.5)),
                ("head/bias".into(), Tensor::full(&[10], -0.1)),
            ],
        )
    }

    #[test]
    fn diff_identifies_changed_tensors() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        assert_eq!(d.changed.len(), 2);
        assert_eq!(d.unchanged, vec!["frozen/kernel".to_string()]);
        assert!((d.changed_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.base_iteration, 100);
        assert_eq!(d.iteration, 150);
    }

    #[test]
    fn apply_reconstructs_exactly() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let rebuilt = apply(&base(), &d).unwrap();
        assert_eq!(rebuilt, fine_tuned());
    }

    #[test]
    fn delta_of_identical_checkpoints_is_empty() {
        let mut same = base();
        same.iteration = 101;
        let d = diff(&base(), &same).unwrap();
        assert!(d.changed.is_empty());
        assert_eq!(d.changed_fraction(), 0.0);
        assert_eq!(d.payload_bytes(), 0);
        assert_eq!(apply(&base(), &d).unwrap(), same);
    }

    #[test]
    fn delta_transfers_less_than_full_checkpoint() {
        use crate::{CheckpointFormat, ViperFormat};
        let d = diff(&base(), &fine_tuned()).unwrap();
        let delta_bytes = d.encode().len();
        let full_bytes = ViperFormat.encode(&fine_tuned()).len();
        assert!(
            delta_bytes < full_bytes / 2,
            "{delta_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let decoded = DeltaCheckpoint::decode(&d.encode()).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn streaming_encode_is_byte_identical() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let legacy = d.encode();
        for chunk_bytes in [0u64, 16, 64, 1 << 20] {
            let mut enc = StreamingEncoder::new(chunk_bytes);
            d.encode_into(&mut enc);
            assert_eq!(
                enc.finish().payload.as_slice(),
                &legacy[..],
                "chunk_bytes {chunk_bytes}"
            );
        }
    }

    #[test]
    fn decode_detects_corruption() {
        let mut bytes = diff(&base(), &fine_tuned()).unwrap().encode();
        let n = bytes.len();
        bytes[n / 2] ^= 0x01;
        assert!(DeltaCheckpoint::decode(&bytes).is_err());
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let mut wrong = base();
        wrong.iteration = 99;
        assert!(apply(&wrong, &d).is_err());
        let mut other_model = base();
        other_model.model_name = "other".into();
        assert!(apply(&other_model, &d).is_err());
    }

    /// Bitwise checkpoint equality for tests with NaN payloads, where
    /// `PartialEq` is useless.
    fn same_bits(a: &Checkpoint, b: &Checkpoint) -> bool {
        a.model_name == b.model_name
            && a.iteration == b.iteration
            && a.tensors.len() == b.tensors.len()
            && a.tensors
                .iter()
                .zip(&b.tensors)
                .all(|((an, at), (bn, bt))| an == bn && super::bits_equal(at, bt))
    }

    #[test]
    fn diff_sees_sign_bit_of_zero() {
        let mut new = base();
        new.iteration = 101;
        // 0.0 -> -0.0 compares equal under PartialEq but is a real byte
        // change; the delta must carry it.
        new.tensors[2].1 = Tensor::full(&[10], -0.0);
        let d = diff(&base(), &new).unwrap();
        assert_eq!(d.changed.len(), 1, "{d:?}");
        assert_eq!(d.changed[0].0, "head/bias");
        let rebuilt = apply(&base(), &d).unwrap();
        assert!(same_bits(&rebuilt, &new));
        assert!(rebuilt.tensors[2].1.as_slice()[0].is_sign_negative());
    }

    #[test]
    fn diff_treats_identical_nans_as_unchanged() {
        let mut old = base();
        old.tensors[0].1 = Tensor::full(&[50], f32::NAN);
        let mut new = old.clone();
        new.iteration = 101;
        let d = diff(&old, &new).unwrap();
        assert!(
            d.changed.is_empty(),
            "identical NaN payloads must not be resent: {d:?}"
        );
        assert!(same_bits(&apply(&old, &d).unwrap(), &new));
    }

    #[test]
    fn diff_distinguishes_nan_payloads() {
        let mut old = base();
        old.tensors[0].1 = Tensor::full(&[50], f32::from_bits(0x7fc0_0000));
        let mut new = old.clone();
        new.iteration = 101;
        // A different NaN bit pattern is a change.
        new.tensors[0].1 = Tensor::full(&[50], f32::from_bits(0x7fc0_0001));
        let d = diff(&old, &new).unwrap();
        assert_eq!(d.changed.len(), 1);
        assert!(same_bits(&apply(&old, &d).unwrap(), &new));
    }

    #[test]
    fn apply_handles_reordered_delta_entries() {
        let d0 = diff(&base(), &fine_tuned()).unwrap();
        // The changed list arriving in any order must not matter.
        let mut d = d0.clone();
        d.changed.reverse();
        let rebuilt = apply(&base(), &d).unwrap();
        assert_eq!(rebuilt, fine_tuned());
        // Reconstruction preserves the *base's* tensor order.
        let names: Vec<&str> = rebuilt.tensors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["frozen/kernel", "head/kernel", "head/bias"]);
    }

    /// Streaming diff must equal envelope-free materialized encode for any
    /// chunk geometry.
    #[test]
    fn diff_into_matches_materialized_encode() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let legacy = d.encode();
        for chunk_bytes in [0u64, 16, 64, 1 << 20] {
            let mut enc = StreamingEncoder::new(chunk_bytes);
            let stats = diff_into(&base(), &fine_tuned(), &mut enc).unwrap();
            assert_eq!(
                enc.finish().payload.as_slice(),
                &legacy[..],
                "chunk_bytes {chunk_bytes}"
            );
            assert_eq!(stats.nchanged, d.changed.len());
            assert_eq!(stats.nunchanged, d.unchanged.len());
            assert_eq!(stats.changed_bytes, d.payload_bytes());
        }
    }

    #[test]
    fn diff_into_empty_delta_matches() {
        let mut same = base();
        same.iteration = 101;
        let legacy = diff(&base(), &same).unwrap().encode();
        let mut enc = StreamingEncoder::new(64);
        let stats = diff_into(&base(), &same, &mut enc).unwrap();
        assert_eq!(enc.finish().payload.as_slice(), &legacy[..]);
        assert_eq!(stats.nchanged, 0);
        assert_eq!(stats.changed_bytes, 0);
    }

    #[test]
    fn diff_into_byte_compare_agrees_on_nan_and_sign_cases() {
        // The memcmp-class compare must reproduce the bit-pattern
        // semantics: -0.0 is a change, identical NaNs are not.
        let mut new = base();
        new.iteration = 101;
        new.tensors[2].1 = Tensor::full(&[10], -0.0);
        let mut enc = StreamingEncoder::new(0);
        let stats = diff_into(&base(), &new, &mut enc).unwrap();
        assert_eq!(stats.nchanged, 1);
        assert_eq!(
            enc.finish().payload.as_slice(),
            &diff(&base(), &new).unwrap().encode()[..]
        );

        let mut old = base();
        old.tensors[0].1 = Tensor::full(&[50], f32::NAN);
        let mut same = old.clone();
        same.iteration = 101;
        let mut enc = StreamingEncoder::new(0);
        assert_eq!(diff_into(&old, &same, &mut enc).unwrap().nchanged, 0);
    }

    #[test]
    fn diff_into_rejects_what_diff_rejects() {
        let mut renamed = fine_tuned();
        renamed.model_name = "other".into();
        let mut enc = StreamingEncoder::new(0);
        assert!(diff_into(&base(), &renamed, &mut enc).is_err());
        let mut swapped = fine_tuned();
        swapped.tensors[0].0 = "unknown/kernel".into();
        let mut enc = StreamingEncoder::new(0);
        assert!(diff_into(&base(), &swapped, &mut enc).is_err());
    }

    #[test]
    fn apply_owned_matches_apply_and_moves_changed() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let via_ref = apply(&base(), &d).unwrap();
        let (via_owned, stats) = apply_owned(&base(), d).unwrap();
        assert_eq!(via_owned, via_ref);
        assert_eq!(via_owned, fine_tuned());
        // 2 changed tensors moved, only the frozen backbone copied — the
        // borrowed path would have copied all 3.
        assert_eq!(
            stats,
            ApplyStats {
                tensors_moved: 2,
                tensors_copied: 1
            }
        );
    }

    #[test]
    fn apply_owned_rejects_wrong_base() {
        let d = diff(&base(), &fine_tuned()).unwrap();
        let mut wrong = base();
        wrong.iteration = 99;
        assert!(apply_owned(&wrong, d.clone()).is_err());
        let mut incomplete = d;
        incomplete.unchanged.clear();
        assert!(apply_owned(&base(), incomplete).is_err());
    }

    #[test]
    fn diff_rejects_mismatched_models() {
        let mut renamed = fine_tuned();
        renamed.model_name = "other".into();
        assert!(diff(&base(), &renamed).is_err());

        let mut extra = fine_tuned();
        extra
            .tensors
            .push(("new/tensor".into(), Tensor::zeros(&[1])));
        assert!(diff(&base(), &extra).is_err());

        let mut swapped = fine_tuned();
        swapped.tensors[0].0 = "unknown/kernel".into();
        assert!(diff(&base(), &swapped).is_err());
    }
}
