//! The lean Viper checkpoint format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     : b"VIPR"
//! version   : u32 (= 1)
//! name      : u32 len + bytes
//! iteration : u64
//! ntensors  : u32
//! per tensor:
//!   name    : u32 len + bytes
//!   rank    : u32
//!   dims    : rank x u64
//!   payload : num_elements x f32
//! crc32     : u32 over everything before the footer
//! ```

use crate::checkpoint::{bytes_to_f32s, put_f32s, put_string, put_u32, put_u64, Reader};
use crate::{crc32, Checkpoint, CheckpointFormat, FormatError, StreamingEncoder};
use viper_tensor::Tensor;

const MAGIC: &[u8; 4] = b"VIPR";
const VERSION: u32 = 1;

/// The lean Viper binary format: "only the model weights and closely
/// related metadata" (§5.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ViperFormat;

impl CheckpointFormat for ViperFormat {
    fn name(&self) -> &'static str {
        "viper"
    }

    fn encode(&self, ckpt: &Checkpoint) -> Vec<u8> {
        let mut out = Vec::with_capacity(ckpt.payload_bytes() as usize + 256);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_string(&mut out, &ckpt.model_name);
        put_u64(&mut out, ckpt.iteration);
        put_u32(&mut out, ckpt.tensors.len() as u32);
        for (name, tensor) in &ckpt.tensors {
            put_string(&mut out, name);
            put_u32(&mut out, tensor.dims().len() as u32);
            for &d in tensor.dims() {
                put_u64(&mut out, d as u64);
            }
            put_f32s(&mut out, tensor.as_slice());
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    fn encode_into(&self, ckpt: &Checkpoint, enc: &mut StreamingEncoder) {
        // Byte-identical to `encode`, but each tensor is checksummed right
        // after it is written (one pass over the bytes), and the CRC footer
        // is derived from the rolling chunk CRCs via combine — even when a
        // wire envelope precedes the body in the same buffer.
        let mark = enc.mark();
        enc.put_bytes(MAGIC);
        enc.put_u32(VERSION);
        enc.put_string(&ckpt.model_name);
        enc.put_u64(ckpt.iteration);
        enc.put_u32(ckpt.tensors.len() as u32);
        for (name, tensor) in &ckpt.tensors {
            enc.put_string(name);
            enc.put_u32(tensor.dims().len() as u32);
            for &d in tensor.dims() {
                enc.put_u64(d as u64);
            }
            enc.put_f32s(tensor.as_slice());
            enc.absorb();
        }
        let crc = enc.crc_since(mark);
        enc.put_u32(crc);
    }

    fn decode(&self, bytes: &[u8]) -> Result<Checkpoint, FormatError> {
        if bytes.len() < 4 {
            return Err(FormatError::Truncated {
                context: "crc footer",
            });
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(FormatError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(body);
        if r.take(4, "magic")? != MAGIC {
            return Err(FormatError::BadMagic);
        }
        if r.u32("version")? != VERSION {
            return Err(FormatError::BadMagic);
        }
        let model_name = r.string("model name")?;
        let iteration = r.u64("iteration")?;
        let ntensors = r.u32("tensor count")? as usize;
        let mut tensors = Vec::with_capacity(ntensors);
        for _ in 0..ntensors {
            let name = r.string("tensor name")?;
            let rank = r.u32("tensor rank")? as usize;
            if rank > 8 {
                return Err(FormatError::Corrupt(format!("unreasonable rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64("tensor dim")? as usize);
            }
            let n: usize = dims.iter().product();
            let payload = r.take(n * 4, "tensor payload")?;
            let data = bytes_to_f32s(payload)?;
            let tensor =
                Tensor::from_vec(data, &dims).map_err(|e| FormatError::Corrupt(e.to_string()))?;
            tensors.push((name, tensor));
        }
        if r.position() != body.len() {
            return Err(FormatError::Corrupt(format!(
                "{} trailing bytes after last tensor",
                body.len() - r.position()
            )));
        }
        Ok(Checkpoint {
            model_name,
            iteration,
            tensors,
        })
    }

    fn metadata_ops_factor(&self) -> f64 {
        1.0
    }

    fn encoded_size(&self, payload_bytes: u64, ntensors: usize) -> u64 {
        // Header ≈ 64 B; per tensor: name (~24 B), rank + dims (~28 B).
        64 + payload_bytes + (ntensors as u64) * 52
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint::new(
            "tc1",
            216,
            vec![
                (
                    "conv1/kernel".into(),
                    Tensor::from_vec(vec![0.5, -1.5, 2.0, 0.0], &[2, 1, 2]).unwrap(),
                ),
                (
                    "dense/bias".into(),
                    Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap(),
                ),
            ],
        )
    }

    #[test]
    fn roundtrip_exact() {
        let f = ViperFormat;
        let ckpt = sample();
        let decoded = f.decode(&f.encode(&ckpt)).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn streaming_encode_is_byte_identical() {
        let f = ViperFormat;
        for ckpt in [sample(), Checkpoint::new("empty", 0, vec![])] {
            let legacy = f.encode(&ckpt);
            for chunk_bytes in [0u64, 16, 64, 1 << 20] {
                let mut enc = StreamingEncoder::new(chunk_bytes);
                f.encode_into(&ckpt, &mut enc);
                let fused = enc.finish();
                assert_eq!(
                    fused.payload.as_slice(),
                    &legacy[..],
                    "chunk_bytes {chunk_bytes}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_empty_checkpoint() {
        let f = ViperFormat;
        let ckpt = Checkpoint::new("empty", 0, vec![]);
        assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn corruption_detected_by_crc() {
        let f = ViperFormat;
        let mut bytes = f.encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            f.decode(&bytes),
            Err(FormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let f = ViperFormat;
        let bytes = f.encode(&sample());
        assert!(f.decode(&bytes[..bytes.len() - 10]).is_err());
        assert!(f.decode(&[]).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let f = ViperFormat;
        let mut bytes = f.encode(&sample());
        bytes[0] = b'X';
        // CRC covers the magic, so this surfaces as a checksum error first —
        // both are decode failures.
        assert!(f.decode(&bytes).is_err());
        // A well-formed foreign stream with valid CRC but wrong magic:
        let mut foreign = b"NOPE".to_vec();
        let crc = crc32(&foreign);
        foreign.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(f.decode(&foreign), Err(FormatError::BadMagic)));
    }

    #[test]
    fn encoded_size_prediction_close() {
        let f = ViperFormat;
        let ckpt = sample();
        let actual = f.encode(&ckpt).len() as u64;
        let predicted = f.encoded_size(ckpt.payload_bytes(), ckpt.ntensors());
        let diff = (actual as i64 - predicted as i64).unsigned_abs();
        assert!(diff < 128, "actual {actual} vs predicted {predicted}");
    }

    #[test]
    fn lean_overhead_is_small() {
        let f = ViperFormat;
        let big = Checkpoint::new("big", 1, vec![("w".into(), Tensor::zeros(&[1000, 1000]))]);
        let encoded = f.encode(&big).len() as f64;
        let payload = big.payload_bytes() as f64;
        assert!(encoded / payload < 1.001);
    }
}
