//! Payload-kind framing for delta-aware delivery.
//!
//! When a deployment ships deltas, two byte layouts travel the same wire:
//! full checkpoints ([`crate::ViperFormat`] / [`crate::H5Lite`]) and
//! [`crate::DeltaCheckpoint`]s (VIPD). The receiver must dispatch on an
//! explicit header, never by sniffing body magics — the same rule the
//! chunked transport applies to chunk vs monolithic messages. This module
//! is that header: a 5-byte envelope (`magic` + kind byte) prepended to the
//! body.
//!
//! The envelope exists **only on the wire** and only when the deployment's
//! delta transfer is enabled; durable PFS copies and staging-tier caches
//! always store raw full-format bytes, and a delta-off deployment's wire
//! bytes are exactly the raw encoding (so the fault-free fast path stays
//! byte-identical to a build without this layer).

use crate::FormatError;

/// Magic bytes opening a wire payload envelope ("VPWP").
pub const WIRE_MAGIC: &[u8; 4] = b"VPWP";

/// Envelope size prepended to the body (magic + kind byte).
pub const WIRE_HEADER_BYTES: usize = 5;

/// What byte layout a framed wire payload's body uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A complete checkpoint in the deployment's configured format.
    Full,
    /// A [`crate::DeltaCheckpoint`] against an acknowledged base version.
    Delta,
}

impl PayloadKind {
    fn byte(self) -> u8 {
        match self {
            PayloadKind::Full => 0,
            PayloadKind::Delta => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PayloadKind::Full),
            1 => Some(PayloadKind::Delta),
            _ => None,
        }
    }

    /// Stable label for traces and counters.
    pub fn label(self) -> &'static str {
        match self {
            PayloadKind::Full => "full",
            PayloadKind::Delta => "delta",
        }
    }
}

/// The raw envelope bytes for `kind`, for writers that stream the envelope
/// and body into one buffer (the fused encoder) instead of copying through
/// [`frame`].
pub fn envelope(kind: PayloadKind) -> [u8; WIRE_HEADER_BYTES] {
    let mut out = [0u8; WIRE_HEADER_BYTES];
    out[..4].copy_from_slice(WIRE_MAGIC);
    out[4] = kind.byte();
    out
}

/// Prepend the payload-kind envelope to an encoded body.
pub fn frame(kind: PayloadKind, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HEADER_BYTES + body.len());
    out.extend_from_slice(&envelope(kind));
    out.extend_from_slice(body);
    out
}

/// Split a framed wire payload into its kind and body.
pub fn unframe(bytes: &[u8]) -> Result<(PayloadKind, &[u8]), FormatError> {
    if bytes.len() < WIRE_HEADER_BYTES {
        return Err(FormatError::Truncated {
            context: "wire envelope",
        });
    }
    if &bytes[..4] != WIRE_MAGIC {
        return Err(FormatError::BadMagic);
    }
    let kind = PayloadKind::from_byte(bytes[4])
        .ok_or_else(|| FormatError::Corrupt(format!("unknown payload kind {}", bytes[4])))?;
    Ok((kind, &bytes[WIRE_HEADER_BYTES..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_both_kinds() {
        for kind in [PayloadKind::Full, PayloadKind::Delta] {
            let framed = frame(kind, b"body-bytes");
            assert_eq!(framed.len(), WIRE_HEADER_BYTES + 10);
            let (k, body) = unframe(&framed).unwrap();
            assert_eq!(k, kind);
            assert_eq!(body, b"body-bytes");
        }
    }

    #[test]
    fn envelope_matches_frame_prefix() {
        for kind in [PayloadKind::Full, PayloadKind::Delta] {
            assert_eq!(frame(kind, b"abc")[..WIRE_HEADER_BYTES], envelope(kind));
        }
    }

    #[test]
    fn frame_of_empty_body() {
        let framed = frame(PayloadKind::Full, b"");
        let (k, body) = unframe(&framed).unwrap();
        assert_eq!(k, PayloadKind::Full);
        assert!(body.is_empty());
    }

    #[test]
    fn unframe_rejects_garbage() {
        assert!(matches!(
            unframe(b"VPW"),
            Err(FormatError::Truncated { .. })
        ));
        assert!(matches!(
            unframe(b"XXXX\x00body"),
            Err(FormatError::BadMagic)
        ));
        // Raw format bytes (full checkpoint magic) are not an envelope.
        assert!(matches!(
            unframe(b"VIPR\x01...."),
            Err(FormatError::BadMagic)
        ));
        let mut bad = frame(PayloadKind::Delta, b"x");
        bad[4] = 7;
        assert!(matches!(unframe(&bad), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PayloadKind::Full.label(), "full");
        assert_eq!(PayloadKind::Delta.label(), "delta");
    }
}
