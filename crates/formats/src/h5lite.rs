//! An HDF5-flavoured baseline format ("h5py" in the paper's figures).
//!
//! Real HDF5 files carry a 512-byte superblock, per-dataset object headers
//! with attribute messages, chunked dataset storage with a per-chunk b-tree
//! index, and alignment padding. `H5Lite` reproduces that structure — and
//! therefore its size and metadata-operation overhead — without the full
//! HDF5 feature set:
//!
//! ```text
//! superblock      : 512 B (magic, version, root group info, padding)
//! per dataset     :
//!   object header : 256 B (name, dtype/dataspace/attribute messages)
//!   chunks        : payload split into 60 KiB chunks, each preceded by a
//!                   4 KiB chunk header+btree entry (≈6.7% bloat on large
//!                   tensors, matching the h5py-vs-Viper gap in Fig. 8)
//! footer          : u32 dataset count + crc32
//! ```

use crate::checkpoint::{bytes_to_f32s, put_f32s, put_string, put_u32, put_u64, Reader};
use crate::{crc32, Checkpoint, CheckpointFormat, FormatError};
use viper_tensor::Tensor;

const SUPERBLOCK_MAGIC: &[u8; 8] = b"\x89HDFlite";
const SUPERBLOCK_SIZE: usize = 512;
const OBJECT_HEADER_SIZE: usize = 256;
/// Payload bytes per chunk.
const CHUNK_DATA: usize = 60 * 1024;
/// Header + b-tree index entry bytes per chunk.
const CHUNK_HEADER: usize = 4 * 1024;

/// The h5py-style baseline format.
#[derive(Debug, Clone, Copy, Default)]
pub struct H5Lite;

fn chunk_count(payload: usize) -> usize {
    payload.div_ceil(CHUNK_DATA).max(1)
}

impl CheckpointFormat for H5Lite {
    fn name(&self) -> &'static str {
        "h5py"
    }

    fn encode(&self, ckpt: &Checkpoint) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(self.encoded_size(ckpt.payload_bytes(), ckpt.ntensors()) as usize);

        // Superblock.
        out.extend_from_slice(SUPERBLOCK_MAGIC);
        put_u32(&mut out, 0); // superblock version
        put_string(&mut out, &ckpt.model_name);
        put_u64(&mut out, ckpt.iteration);
        put_u32(&mut out, ckpt.tensors.len() as u32);
        out.resize(SUPERBLOCK_SIZE, 0);

        for (name, tensor) in &ckpt.tensors {
            // Object header block, zero-padded to its fixed size.
            let header_start = out.len();
            put_string(&mut out, name);
            put_u32(&mut out, tensor.dims().len() as u32);
            for &d in tensor.dims() {
                put_u64(&mut out, d as u64);
            }
            // Emulated attribute messages (dtype, fill value, creation time).
            put_string(&mut out, "float32");
            put_u64(&mut out, 0);
            assert!(
                out.len() - header_start <= OBJECT_HEADER_SIZE,
                "object header overflow for tensor {name}"
            );
            out.resize(header_start + OBJECT_HEADER_SIZE, 0);

            // Chunked payload. (H5Lite interleaves chunk headers with the
            // data, so it materializes per tensor; it is the emulated
            // *baseline*, not the hot path.)
            let mut payload = Vec::with_capacity(tensor.as_slice().len() * 4);
            put_f32s(&mut payload, tensor.as_slice());
            let nchunks = chunk_count(payload.len());
            put_u32(&mut out, nchunks as u32);
            for (ci, chunk) in payload.chunks(CHUNK_DATA.max(1)).enumerate() {
                let ch_start = out.len();
                put_u32(&mut out, ci as u32);
                put_u32(&mut out, chunk.len() as u32);
                put_u32(&mut out, crc32(chunk)); // fletcher32 stand-in
                out.resize(ch_start + CHUNK_HEADER, 0);
                out.extend_from_slice(chunk);
            }
            if payload.is_empty() {
                // Zero-length dataset still carries one (empty) chunk entry.
                let ch_start = out.len();
                put_u32(&mut out, 0);
                put_u32(&mut out, 0);
                put_u32(&mut out, crc32(&[]));
                out.resize(ch_start + CHUNK_HEADER, 0);
            }
        }

        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    fn decode(&self, bytes: &[u8]) -> Result<Checkpoint, FormatError> {
        if bytes.len() < SUPERBLOCK_SIZE + 4 {
            return Err(FormatError::Truncated {
                context: "superblock",
            });
        }
        let (body, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().unwrap());
        let computed = crc32(body);
        if stored != computed {
            return Err(FormatError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader::new(body);
        if r.take(8, "magic")? != SUPERBLOCK_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let _version = r.u32("superblock version")?;
        let model_name = r.string("model name")?;
        let iteration = r.u64("iteration")?;
        let ntensors = r.u32("dataset count")? as usize;
        r.skip(SUPERBLOCK_SIZE - r.position(), "superblock padding")?;

        let mut tensors = Vec::with_capacity(ntensors);
        for _ in 0..ntensors {
            let header_start = r.position();
            let name = r.string("dataset name")?;
            let rank = r.u32("dataset rank")? as usize;
            if rank > 8 {
                return Err(FormatError::Corrupt(format!("unreasonable rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64("dataset dim")? as usize);
            }
            let _dtype = r.string("dtype attribute")?;
            let _fill = r.u64("fill attribute")?;
            r.skip(
                header_start + OBJECT_HEADER_SIZE - r.position(),
                "object header padding",
            )?;

            let n: usize = dims.iter().product();
            let expected_payload = n * 4;
            let nchunks = r.u32("chunk count")? as usize;
            let mut payload = Vec::with_capacity(expected_payload);
            if expected_payload == 0 {
                // Consume the single empty chunk entry.
                r.skip(CHUNK_HEADER, "empty chunk")?;
            } else {
                for _ in 0..nchunks {
                    let ch_start = r.position();
                    let _ci = r.u32("chunk index")?;
                    let len = r.u32("chunk length")? as usize;
                    let chunk_crc = r.u32("chunk checksum")?;
                    r.skip(
                        ch_start + CHUNK_HEADER - r.position(),
                        "chunk header padding",
                    )?;
                    let chunk = r.take(len, "chunk payload")?;
                    if crc32(chunk) != chunk_crc {
                        return Err(FormatError::Corrupt("chunk checksum mismatch".into()));
                    }
                    payload.extend_from_slice(chunk);
                }
            }
            if payload.len() != expected_payload {
                return Err(FormatError::Corrupt(format!(
                    "dataset {name}: payload {} bytes, dataspace requires {expected_payload}",
                    payload.len()
                )));
            }
            let data = bytes_to_f32s(&payload)?;
            let tensor =
                Tensor::from_vec(data, &dims).map_err(|e| FormatError::Corrupt(e.to_string()))?;
            tensors.push((name, tensor));
        }
        Ok(Checkpoint {
            model_name,
            iteration,
            tensors,
        })
    }

    fn metadata_ops_factor(&self) -> f64 {
        // Superblock + object header + b-tree traversal per dataset ≈ 4x the
        // metadata accesses of the lean format.
        4.0
    }

    fn encoded_size(&self, payload_bytes: u64, ntensors: usize) -> u64 {
        let ntensors = ntensors.max(1) as u64;
        let per_tensor_payload = payload_bytes / ntensors;
        let chunks_per_tensor = chunk_count(per_tensor_payload as usize) as u64;
        SUPERBLOCK_SIZE as u64
            + payload_bytes
            + ntensors * (OBJECT_HEADER_SIZE as u64 + 4 + chunks_per_tensor * CHUNK_HEADER as u64)
            + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint::new(
            "ptychonn",
            100,
            vec![
                (
                    "enc/conv1".into(),
                    Tensor::from_vec((0..64).map(|x| x as f32).collect(), &[4, 4, 4]).unwrap(),
                ),
                (
                    "dec/amp".into(),
                    Tensor::from_vec(vec![1.0; 7], &[7]).unwrap(),
                ),
                ("empty".into(), Tensor::zeros(&[0])),
            ],
        )
    }

    #[test]
    fn roundtrip_exact() {
        let f = H5Lite;
        let ckpt = sample();
        assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn multi_chunk_tensor_roundtrips() {
        let f = H5Lite;
        // 100k floats = 400 KB > several 60 KiB chunks.
        let data: Vec<f32> = (0..100_000).map(|i| (i % 251) as f32 * 0.5).collect();
        let ckpt = Checkpoint::new(
            "big",
            1,
            vec![("w".into(), Tensor::from_vec(data, &[100_000]).unwrap())],
        );
        assert_eq!(f.decode(&f.encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn bloat_exceeds_viper_format() {
        use crate::ViperFormat;
        let data: Vec<f32> = vec![1.0; 500_000]; // 2 MB
        let ckpt = Checkpoint::new(
            "m",
            1,
            vec![("w".into(), Tensor::from_vec(data, &[500_000]).unwrap())],
        );
        let h5 = H5Lite.encode(&ckpt).len() as f64;
        let lean = ViperFormat.encode(&ckpt).len() as f64;
        let bloat = h5 / lean;
        // Chunk headers add ≈6.7%.
        assert!(bloat > 1.05 && bloat < 1.10, "bloat {bloat}");
    }

    #[test]
    fn corruption_detected() {
        let f = H5Lite;
        let mut bytes = f.encode(&sample());
        let n = bytes.len();
        bytes[n / 2] ^= 0x80;
        assert!(f.decode(&bytes).is_err());
    }

    #[test]
    fn encoded_size_prediction_close() {
        let f = H5Lite;
        let data: Vec<f32> = vec![0.5; 200_000];
        let ckpt = Checkpoint::new(
            "m",
            1,
            vec![("w".into(), Tensor::from_vec(data, &[200_000]).unwrap())],
        );
        let actual = f.encode(&ckpt).len() as f64;
        let predicted = f.encoded_size(ckpt.payload_bytes(), ckpt.ntensors()) as f64;
        assert!(
            (actual - predicted).abs() / actual < 0.02,
            "actual {actual} predicted {predicted}"
        );
    }

    #[test]
    fn metadata_factor_higher_than_lean() {
        use crate::ViperFormat;
        assert!(H5Lite.metadata_ops_factor() > ViperFormat.metadata_ops_factor());
    }
}
