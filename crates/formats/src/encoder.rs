//! Fused single-pass encode: serialized bytes land in one buffer, once,
//! with per-chunk CRC32s computed as the bytes arrive.
//!
//! The legacy encode chain read every payload byte three times —
//! serialize into a `Vec`, whole-buffer [`crc32`](crate::crc32) for the
//! format footer, then per-chunk CRCs (and for wire-framed payloads a
//! `wire::frame` re-copy) at send time. [`StreamingEncoder`] collapses
//! that to a single pass: writers append bytes, [`absorb`]
//! (called after each tensor, while the bytes are cache-hot) feeds them
//! into a streaming [`Crc32`] that rolls over at every chunk boundary,
//! and [`finish`] emits an [`EncodedPayload`] whose `chunk_crcs` slot
//! straight into `ChunkHeader`s downstream — the transport never
//! re-reads the bytes it ships.
//!
//! Format footers (the trailing CRC32 over a format's body) fall out of
//! the same pass: [`mark`] snapshots the stream CRC at the body start,
//! and [`crc_since`] recovers the body-only CRC algebraically with
//! [`crc32_combine`] — `crc(body) = crc(prefix ‖ body) ^
//! shift(crc(prefix), len(body))` — so prepending a wire envelope does
//! not force a second checksum pass.
//!
//! [`EncodeArena`] amortizes the one remaining allocation per save.
//! Ownership rule: the arena holds one `Arc` clone per parked buffer and
//! *never* mutates a buffer while any other view exists — reclaim is
//! gated on `Arc::strong_count == 1`, i.e. on every staging-tier
//! resident, in-flight chunk, retransmit slice, and consumer install
//! having dropped. A buffer that is still referenced simply stays
//! parked; the encoder falls back to a fresh allocation.
//!
//! [`absorb`]: StreamingEncoder::absorb
//! [`finish`]: StreamingEncoder::finish
//! [`mark`]: StreamingEncoder::mark
//! [`crc_since`]: StreamingEncoder::crc_since

use crate::crc::{crc32_combine, Crc32};
use crate::payload::Payload;
use std::sync::Arc;

/// The product of a fused encode: the payload bytes (allocated once,
/// possibly recycled from an [`EncodeArena`]) plus the per-chunk CRC32s
/// computed while the bytes were written.
#[derive(Clone, Debug)]
pub struct EncodedPayload {
    /// The encoded bytes, ready to stage/send without further copies.
    pub payload: Payload,
    /// Chunk geometry the CRCs were computed for: maximum bytes per chunk,
    /// `0` meaning "one chunk spanning the whole payload". Matches the
    /// transport's `chunk_sizes` splitting exactly.
    pub chunk_bytes: u64,
    /// CRC32 of each chunk's bytes, in order. Always non-empty (an empty
    /// payload is one empty chunk, mirroring `chunk_sizes`).
    pub chunk_crcs: Arc<Vec<u32>>,
    /// Whether the buffer was recycled from an arena rather than freshly
    /// allocated. Telemetry counts only fresh allocations.
    pub reused: bool,
}

/// A pool of retired encode buffers, one per producer node. Parked buffers
/// are candidates for reuse; a buffer is only handed back to an encoder
/// when the arena holds the *sole* reference to it (see module docs for
/// the ownership rule).
///
/// Reuse picks the **largest** reclaimable slot — when checkpoints vary in
/// size, a big save should find the big retired buffer, not whichever
/// small one happened to park first. The flip side of keeping the largest
/// allocation alive is that a workload which *shrinks* (delta saves after
/// an initial full checkpoint) would pin the high-water allocation
/// forever; the arena therefore decays: after [`DECAY_AFTER`] consecutive
/// recycles that used less than half of the arena's high-water capacity,
/// the next reclaim shrinks the buffer down to the caller's size hint.
///
/// [`DECAY_AFTER`]: EncodeArena::DECAY_AFTER
#[derive(Debug, Default)]
pub struct EncodeArena {
    slots: Vec<Arc<Vec<u8>>>,
    cap: usize,
    reclaimed: u64,
    misses: u64,
    /// Consecutive recycles whose payload used less than half of the
    /// arena's high-water capacity (the largest backing buffer it knows
    /// of). Reset by any save big enough to justify that allocation.
    underuse_streak: u32,
    decays: u64,
}

impl EncodeArena {
    /// Consecutive under-half-capacity saves after which the next reclaim
    /// releases the excess high-water allocation.
    pub const DECAY_AFTER: u32 = 8;

    /// Arena holding up to 4 retired buffers.
    pub fn new() -> Self {
        Self::with_slots(4)
    }

    /// Arena holding up to `cap` retired buffers.
    pub fn with_slots(cap: usize) -> Self {
        EncodeArena {
            slots: Vec::new(),
            cap: cap.max(1),
            reclaimed: 0,
            misses: 0,
            underuse_streak: 0,
            decays: 0,
        }
    }

    /// Take a reusable buffer, cleared and with at least `capacity` bytes
    /// reserved. Among the uniquely owned parked slots the one with the
    /// largest backing capacity wins, so the hottest (biggest) saves keep
    /// hitting the arena. `None` means every parked buffer is still
    /// referenced elsewhere (or the arena is empty) and the caller should
    /// allocate.
    fn take(&mut self, capacity: usize) -> Option<Vec<u8>> {
        let idx = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| Arc::strong_count(s) == 1)
            .max_by_key(|(_, s)| s.capacity())
            .map(|(i, _)| i)?;
        let arc = self.slots.swap_remove(idx);
        let mut buf = Arc::try_unwrap(arc).ok()?;
        buf.clear();
        if self.underuse_streak >= Self::DECAY_AFTER && buf.capacity() > capacity {
            // Sustained underuse: the workload no longer needs the
            // high-water allocation. Drop to the caller's hint and start
            // a fresh streak against the smaller capacity.
            buf.shrink_to(capacity);
            self.underuse_streak = 0;
            self.decays += 1;
        }
        if buf.capacity() < capacity {
            buf.reserve(capacity - buf.capacity());
        }
        self.reclaimed += 1;
        Some(buf)
    }

    /// Park the backing buffer of a finished payload for future reuse.
    /// Oldest slots are evicted beyond the arena's capacity. Also scores
    /// the save against the decay streak: a payload using less than half
    /// of the arena's high-water capacity extends the streak, a save big
    /// enough to justify the retained allocation resets it. (Scoring
    /// against the high-water — not the payload's own backing — matters
    /// when saves ping-pong between a large and a small buffer: the small
    /// buffer's dense recycles say nothing about whether the large one is
    /// still earning its keep.)
    pub fn recycle(&mut self, payload: &Payload) {
        let backing = payload.backing();
        let high_water = self
            .slots
            .iter()
            .map(|s| s.capacity())
            .max()
            .unwrap_or(0)
            .max(backing.capacity());
        if (backing.len() as u128) * 2 < high_water as u128 {
            self.underuse_streak = self.underuse_streak.saturating_add(1);
        } else {
            self.underuse_streak = 0;
        }
        if self.slots.len() == self.cap {
            self.slots.remove(0);
        }
        self.slots.push(Arc::clone(backing));
    }

    /// How many encodes reused a parked buffer.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// How many encodes had to allocate because no parked buffer was free.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// How many reclaims released a high-water allocation after a
    /// sustained underuse streak.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Total bytes of backing capacity currently parked in the arena
    /// (including buffers still referenced elsewhere).
    pub fn retained_capacity(&self) -> usize {
        self.slots.iter().map(|s| s.capacity()).sum()
    }
}

/// Snapshot of the encoder's position and rolling CRC, taken with
/// [`StreamingEncoder::mark`]; feed back to
/// [`StreamingEncoder::crc_since`] to get the CRC of everything written
/// after the mark without re-reading it.
#[derive(Clone, Copy, Debug)]
pub struct StreamMark {
    pos: usize,
    crc: u32,
}

/// Single-pass encoder: append bytes, get chunk-aligned CRCs for free.
/// See the module docs for the dataflow.
#[derive(Debug)]
pub struct StreamingEncoder {
    buf: Vec<u8>,
    reused: bool,
    chunk_bytes: u64,
    /// Bytes of `buf` already fed to the CRC state.
    absorbed: usize,
    /// CRCs of completed (full-sized) chunks.
    chunk_crcs: Vec<u32>,
    /// Rolling state of the current, partially-filled chunk.
    state: Crc32,
    /// Bytes absorbed into the current partial chunk.
    fill: u64,
}

impl StreamingEncoder {
    /// Encoder with a fresh buffer. `chunk_bytes` fixes the CRC chunk
    /// geometry (`0` = single chunk).
    pub fn new(chunk_bytes: u64) -> Self {
        StreamingEncoder {
            buf: Vec::new(),
            reused: false,
            chunk_bytes,
            absorbed: 0,
            chunk_crcs: Vec::new(),
            state: Crc32::new(),
            fill: 0,
        }
    }

    /// Encoder drawing its buffer from `arena` when a parked one is free,
    /// allocating `capacity` bytes otherwise.
    pub fn from_arena(arena: &mut EncodeArena, capacity: usize, chunk_bytes: u64) -> Self {
        let (buf, reused) = match arena.take(capacity) {
            Some(buf) => (buf, true),
            None => {
                arena.misses += 1;
                (Vec::with_capacity(capacity), false)
            }
        };
        StreamingEncoder {
            buf,
            reused,
            chunk_bytes,
            absorbed: 0,
            chunk_crcs: Vec::new(),
            state: Crc32::new(),
            fill: 0,
        }
    }

    /// Whether the buffer came from an arena (no fresh allocation).
    pub fn reused(&self) -> bool {
        self.reused
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes. CRC absorption is lazy; call [`absorb`] at
    /// natural boundaries (per tensor) to checksum while cache-hot.
    ///
    /// [`absorb`]: Self::absorb
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string (u32 length, then bytes),
    /// matching `checkpoint::put_string`.
    pub fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append `f32`s as little-endian bytes, straight into the buffer —
    /// no intermediate `Vec<u8>`. Writes through a small stack block so
    /// the inner loop is branch-light.
    pub fn put_f32s(&mut self, data: &[f32]) {
        self.buf.reserve(data.len() * 4);
        let mut tmp = [0u8; 4096];
        for block in data.chunks(1024) {
            let mut n = 0usize;
            for &x in block {
                tmp[n..n + 4].copy_from_slice(&x.to_le_bytes());
                n += 4;
            }
            self.buf.extend_from_slice(&tmp[..n]);
        }
    }

    /// Feed all not-yet-checksummed bytes into the rolling CRC, closing
    /// out chunks as their boundaries pass. Callers sprinkle this after
    /// each tensor so the CRC reads bytes still resident in cache — the
    /// "one pass" of the fused design.
    pub fn absorb(&mut self) {
        let end = self.buf.len();
        let mut pos = self.absorbed;
        if self.chunk_bytes == 0 {
            self.state.update(&self.buf[pos..end]);
            self.fill += (end - pos) as u64;
            self.absorbed = end;
            return;
        }
        while pos < end {
            let room = (self.chunk_bytes - self.fill) as usize;
            let take = room.min(end - pos);
            self.state.update(&self.buf[pos..pos + take]);
            self.fill += take as u64;
            pos += take;
            if self.fill == self.chunk_bytes {
                self.chunk_crcs.push(self.state.finalize());
                self.state = Crc32::new();
                self.fill = 0;
            }
        }
        self.absorbed = end;
    }

    /// CRC32 of every byte written so far, folded across chunk boundaries
    /// with [`crc32_combine`]. Absorbs pending bytes first.
    pub fn stream_crc(&mut self) -> u32 {
        self.absorb();
        let mut acc = 0u32; // crc of the empty prefix
        for &c in &self.chunk_crcs {
            acc = crc32_combine(acc, c, self.chunk_bytes);
        }
        crc32_combine(acc, self.state.finalize(), self.fill)
    }

    /// Snapshot the current position and stream CRC (absorbing pending
    /// bytes). Pair with [`crc_since`](Self::crc_since).
    pub fn mark(&mut self) -> StreamMark {
        StreamMark {
            pos: self.buf.len(),
            crc: self.stream_crc(),
        }
    }

    /// CRC32 of exactly the bytes written since `mark`, derived without
    /// re-reading them: the prefix's contribution is shifted forward and
    /// stripped (see module docs). This is how format footers coexist
    /// with chunk-aligned absorption in one pass.
    pub fn crc_since(&mut self, mark: StreamMark) -> u32 {
        let whole = self.stream_crc();
        let span = (self.buf.len() - mark.pos) as u64;
        whole ^ crc32_combine(mark.crc, 0, span)
    }

    /// Close out the encode: absorb the tail, seal the final (possibly
    /// empty) chunk, and wrap the buffer in a [`Payload`]. The resulting
    /// chunk list matches the transport's `chunk_sizes` geometry for
    /// (`len`, `chunk_bytes`) exactly.
    pub fn finish(self) -> EncodedPayload {
        self.finish_inner(None)
    }

    /// Like [`finish`](Self::finish), additionally parking the buffer's
    /// backing `Arc` in `arena` so a later encode can reclaim it once all
    /// views drop.
    pub fn finish_into(self, arena: &mut EncodeArena) -> EncodedPayload {
        self.finish_inner(Some(arena))
    }

    fn finish_inner(mut self, arena: Option<&mut EncodeArena>) -> EncodedPayload {
        self.absorb();
        // `chunk_sizes` always yields at least one chunk: a trailing
        // partial chunk, the single chunk of the chunk_bytes == 0 / tiny
        // payload cases, or the empty payload's lone empty chunk.
        if self.fill > 0 || self.chunk_crcs.is_empty() {
            self.chunk_crcs.push(self.state.finalize());
        }
        let payload = Payload::from(self.buf);
        if let Some(arena) = arena {
            arena.recycle(&payload);
        }
        EncodedPayload {
            payload,
            chunk_bytes: self.chunk_bytes,
            chunk_crcs: Arc::new(self.chunk_crcs),
            reused: self.reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32;

    fn filled(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    /// Reference chunk split, mirroring viper-net's `chunk_sizes`.
    fn split_sizes(bytes: u64, chunk_bytes: u64) -> Vec<u64> {
        if bytes == 0 || chunk_bytes == 0 || chunk_bytes >= bytes {
            return vec![bytes];
        }
        let full = bytes / chunk_bytes;
        let rest = bytes % chunk_bytes;
        let mut sizes = vec![chunk_bytes; full as usize];
        if rest > 0 {
            sizes.push(rest);
        }
        sizes
    }

    fn check_geometry(data: &[u8], chunk_bytes: u64) {
        let mut enc = StreamingEncoder::new(chunk_bytes);
        // Ragged writes with interleaved absorbs.
        for (i, piece) in data.chunks(97).enumerate() {
            enc.put_bytes(piece);
            if i % 3 == 0 {
                enc.absorb();
            }
        }
        let out = enc.finish();
        assert_eq!(out.payload.as_slice(), data);
        let sizes = split_sizes(data.len() as u64, chunk_bytes);
        assert_eq!(out.chunk_crcs.len(), sizes.len(), "chunk count");
        let mut off = 0usize;
        for (i, (&crc, &len)) in out.chunk_crcs.iter().zip(sizes.iter()).enumerate() {
            assert_eq!(
                crc,
                crc32(&data[off..off + len as usize]),
                "chunk {i} of {}B/{}B",
                data.len(),
                chunk_bytes
            );
            off += len as usize;
        }
    }

    #[test]
    fn chunk_crcs_match_slice_crcs_across_geometries() {
        for &(len, cb) in &[
            (0usize, 0u64),
            (0, 64),
            (1, 0),
            (1, 64),
            (64, 64),
            (65, 64),
            (128, 64),
            (1000, 64),
            (1000, 0),
            (1000, 4096),
            (4096, 1024),
            (5000, 1024),
        ] {
            check_geometry(&filled(len), cb);
        }
    }

    #[test]
    fn typed_writers_match_manual_layout() {
        let mut enc = StreamingEncoder::new(0);
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(42);
        enc.put_string("hi");
        enc.put_f32s(&[1.5f32, -0.25]);
        let mut want = vec![7u8];
        want.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        want.extend_from_slice(&42u64.to_le_bytes());
        want.extend_from_slice(&2u32.to_le_bytes());
        want.extend_from_slice(b"hi");
        want.extend_from_slice(&1.5f32.to_le_bytes());
        want.extend_from_slice(&(-0.25f32).to_le_bytes());
        let out = enc.finish();
        assert_eq!(out.payload.as_slice(), &want[..]);
        assert_eq!(out.chunk_crcs[0], crc32(&want));
    }

    #[test]
    fn put_f32s_crosses_block_boundary() {
        let data: Vec<f32> = (0..3000).map(|i| i as f32 * 0.5 - 700.0).collect();
        let mut enc = StreamingEncoder::new(0);
        enc.put_f32s(&data);
        let mut want = Vec::new();
        for &x in &data {
            want.extend_from_slice(&x.to_le_bytes());
        }
        assert_eq!(enc.finish().payload.as_slice(), &want[..]);
    }

    #[test]
    fn mark_and_crc_since_strip_prefix() {
        let prefix = filled(123);
        let body = filled(10_000);
        let mut enc = StreamingEncoder::new(256);
        enc.put_bytes(&prefix);
        let mark = enc.mark();
        enc.put_bytes(&body);
        assert_eq!(enc.crc_since(mark), crc32(&body));
        // Mark at the very start degrades to the whole-stream CRC.
        let mut enc = StreamingEncoder::new(0);
        let mark = enc.mark();
        enc.put_bytes(&body);
        assert_eq!(enc.crc_since(mark), crc32(&body));
    }

    #[test]
    fn stream_crc_matches_oneshot() {
        let data = filled(70_001);
        for cb in [0u64, 1024, 4096, 70_001, 1 << 20] {
            let mut enc = StreamingEncoder::new(cb);
            enc.put_bytes(&data);
            assert_eq!(enc.stream_crc(), crc32(&data), "chunk_bytes {cb}");
        }
    }

    #[test]
    fn arena_reuses_only_uniquely_owned_buffers() {
        let mut arena = EncodeArena::with_slots(2);
        let mut enc = StreamingEncoder::from_arena(&mut arena, 1024, 0);
        assert!(!enc.reused(), "empty arena allocates");
        enc.put_bytes(&filled(512));
        let first = enc.finish_into(&mut arena);
        let first_ptr = first.payload.as_slice().as_ptr();

        // Payload still alive: arena must NOT hand the buffer out.
        let mut enc = StreamingEncoder::from_arena(&mut arena, 1024, 0);
        assert!(!enc.reused(), "live payload blocks reclaim");
        enc.put_bytes(&filled(100));
        let second = enc.finish_into(&mut arena);

        // Drop every view of the first payload; now it is reclaimable.
        drop(first);
        let mut enc = StreamingEncoder::from_arena(&mut arena, 256, 0);
        assert!(enc.reused(), "sole-owner buffer is reclaimed");
        enc.put_bytes(&filled(256));
        let third = enc.finish_into(&mut arena);
        assert_eq!(
            third.payload.as_slice().as_ptr(),
            first_ptr,
            "reclaim reuses the allocation"
        );
        assert_eq!(third.payload.as_slice(), &filled(256)[..]);
        assert_eq!(arena.reclaimed(), 1);
        assert_eq!(arena.misses(), 2);
        drop(second);
        drop(third);
    }

    #[test]
    fn arena_evicts_oldest_beyond_capacity() {
        let mut arena = EncodeArena::with_slots(1);
        for _ in 0..3 {
            let mut enc = StreamingEncoder::from_arena(&mut arena, 64, 0);
            enc.put_bytes(&filled(64));
            // Payload dropped immediately; buffer parked.
            let _ = enc.finish_into(&mut arena);
        }
        assert_eq!(arena.slots.len(), 1);
        // Two of the three encodes reclaimed the single parked buffer.
        assert_eq!(arena.reclaimed(), 2);
    }

    #[test]
    fn arena_prefers_largest_reclaimable_slot() {
        let mut arena = EncodeArena::with_slots(4);
        // Park a small and a large retired buffer, both uniquely owned.
        for n in [256usize, 8192, 512] {
            let mut enc = StreamingEncoder::from_arena(&mut arena, n, 0);
            enc.put_bytes(&filled(n));
            let _ = enc.finish_into(&mut arena);
        }
        // All three parked; the NEXT take must pick the 8192-byte slot
        // even though it is neither first nor last.
        let big = arena.slots.iter().map(|s| s.capacity()).max().unwrap();
        assert!(big >= 8192);
        let buf = arena.take(64).expect("reclaimable slot");
        assert_eq!(buf.capacity(), big, "largest slot wins");
    }

    #[test]
    fn arena_decays_high_water_after_sustained_underuse() {
        const BIG: usize = 1 << 16;
        const SMALL: usize = 1 << 10;
        let mut arena = EncodeArena::with_slots(1);
        // One big save establishes the high-water allocation.
        let mut enc = StreamingEncoder::from_arena(&mut arena, BIG, 0);
        enc.put_bytes(&filled(BIG));
        let _ = enc.finish_into(&mut arena);
        let high_water = arena.retained_capacity();
        assert!(high_water >= BIG);

        // A long run of small saves, each reusing (and underusing) the
        // big buffer. The streak builds at recycle; until it reaches
        // DECAY_AFTER, reclaim keeps the full allocation.
        for i in 0..EncodeArena::DECAY_AFTER {
            let mut enc = StreamingEncoder::from_arena(&mut arena, SMALL, 0);
            assert!(enc.reused(), "save {i} reuses the parked buffer");
            enc.put_bytes(&filled(SMALL));
            let _ = enc.finish_into(&mut arena);
        }
        assert_eq!(arena.decays(), 0, "no decay before the streak matures");
        assert_eq!(arena.retained_capacity(), high_water);

        // The streak is mature: the next reclaim releases the excess.
        let mut enc = StreamingEncoder::from_arena(&mut arena, SMALL, 0);
        assert!(enc.reused());
        enc.put_bytes(&filled(SMALL));
        let _ = enc.finish_into(&mut arena);
        assert_eq!(arena.decays(), 1);
        assert!(
            arena.retained_capacity() < high_water / 2,
            "high-water allocation released ({} -> {})",
            high_water,
            arena.retained_capacity()
        );

        // And a dense save resets the streak, so decay does not cascade.
        let mut enc = StreamingEncoder::from_arena(&mut arena, SMALL, 0);
        assert!(enc.reused());
        enc.put_bytes(&filled(SMALL));
        let _ = enc.finish_into(&mut arena);
        assert_eq!(arena.decays(), 1, "dense recycle reset the streak");
    }

    #[test]
    fn empty_encode_is_one_empty_chunk() {
        let out = StreamingEncoder::new(4096).finish();
        assert!(out.payload.is_empty());
        assert_eq!(out.chunk_crcs.len(), 1);
        assert_eq!(out.chunk_crcs[0], crc32(b""));
    }
}
