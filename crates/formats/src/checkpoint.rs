//! The in-memory checkpoint representation shared by all formats.

use viper_tensor::Tensor;

/// A snapshot of a DNN model's state: named weight tensors plus the
/// training iteration it was captured at.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Model name.
    pub model_name: String,
    /// Training iteration at capture time.
    pub iteration: u64,
    /// Named weight tensors, in layer order.
    pub tensors: Vec<(String, Tensor)>,
}

impl Checkpoint {
    /// Build a checkpoint.
    pub fn new(
        model_name: impl Into<String>,
        iteration: u64,
        tensors: Vec<(String, Tensor)>,
    ) -> Self {
        Checkpoint {
            model_name: model_name.into(),
            iteration,
            tensors,
        }
    }

    /// Total payload bytes across all tensors (excluding format framing).
    pub fn payload_bytes(&self) -> u64 {
        self.tensors.iter().map(|(_, t)| t.byte_len() as u64).sum()
    }

    /// Number of tensors.
    pub fn ntensors(&self) -> usize {
        self.tensors.len()
    }

    /// Look up a tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// Errors from decoding a serialized checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The byte stream ended before the structure was complete.
    Truncated {
        /// What was being decoded when the stream ended.
        context: &'static str,
    },
    /// Magic bytes or version did not match the format.
    BadMagic,
    /// Integrity checksum mismatch.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        stored: u32,
        /// Checksum computed over the decoded content.
        computed: u32,
    },
    /// Structurally invalid content (bad lengths, non-UTF8 names, ...).
    Corrupt(String),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Truncated { context } => {
                write!(f, "truncated stream while reading {context}")
            }
            FormatError::BadMagic => write!(f, "bad magic/version: not a recognized checkpoint"),
            FormatError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FormatError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Little-endian cursor helpers shared by the format implementations.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.buf.len() {
            return Err(FormatError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, FormatError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, FormatError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn string(&mut self, context: &'static str) -> Result<String, FormatError> {
        let len = self.u32(context)? as usize;
        if len > 1 << 20 {
            return Err(FormatError::Corrupt(format!(
                "unreasonable string length {len}"
            )));
        }
        let bytes = self.take(len, context)?;
        // Validate on the borrowed slice; the map to an owned String is the
        // single allocation (String::from_utf8(to_vec()) would make two when
        // the bytes are invalid, and an intermediate Vec always).
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| FormatError::Corrupt(format!("non-UTF8 string in {context}")))
    }

    pub(crate) fn skip(&mut self, n: usize, context: &'static str) -> Result<(), FormatError> {
        self.take(n, context).map(|_| ())
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append `f32`s as little-endian bytes directly onto `out` — no
/// intermediate `Vec<u8>`. This is the materializing twin of
/// `StreamingEncoder::put_f32s`; both exist so the legacy encode path
/// (kept as the byte-identity oracle) writes tensors without the
/// `f32s_to_bytes` copy it used to make.
pub(crate) fn put_f32s(out: &mut Vec<u8>, data: &[f32]) {
    out.reserve(data.len() * 4);
    for &x in data {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

pub(crate) fn bytes_to_f32s(bytes: &[u8]) -> Result<Vec<f32>, FormatError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(FormatError::Corrupt(
            "tensor payload not a multiple of 4 bytes".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bytes_sums_tensors() {
        let ckpt = Checkpoint::new(
            "m",
            3,
            vec![
                ("a".into(), Tensor::zeros(&[10])),
                ("b".into(), Tensor::zeros(&[2, 5])),
            ],
        );
        assert_eq!(ckpt.payload_bytes(), 80);
        assert_eq!(ckpt.ntensors(), 2);
        assert!(ckpt.tensor("a").is_some());
        assert!(ckpt.tensor("c").is_none());
    }

    #[test]
    fn reader_detects_truncation() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u32("x"), Err(FormatError::Truncated { .. })));
    }

    #[test]
    fn reader_roundtrips_primitives() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdeadbeef);
        put_u64(&mut buf, 42);
        put_string(&mut buf, "hello");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32("a").unwrap(), 0xdeadbeef);
        assert_eq!(r.u64("b").unwrap(), 42);
        assert_eq!(r.string("c").unwrap(), "hello");
        assert_eq!(r.position(), buf.len());
    }

    #[test]
    fn f32_bytes_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MAX];
        let mut bytes = Vec::new();
        put_f32s(&mut bytes, &v);
        assert_eq!(bytes.len(), v.len() * 4);
        assert_eq!(bytes_to_f32s(&bytes).unwrap(), v);
        assert!(bytes_to_f32s(&[0, 1, 2]).is_err());
    }

    #[test]
    fn reader_rejects_huge_strings() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.string("s"), Err(FormatError::Corrupt(_))));
    }
}
