//! Tensor-level partial access to serialized checkpoints.
//!
//! The paper cites DStore/EvoStore as repositories "optimized for partial
//! capture and retrieval of DNN model tensors, as needed by incremental
//! storage scenarios where the checkpoints change only partially (e.g.
//! transfer learning)". This module gives the lean Viper format the same
//! capability: walk the tensor directory of an encoded checkpoint without
//! materialising payloads, and decode exactly one tensor.
//!
//! Partial reads skip the whole-file CRC (verifying it would require
//! scanning every byte, defeating the point); use
//! [`crate::CheckpointFormat::decode`] when integrity matters more than
//! latency.

use crate::checkpoint::{bytes_to_f32s, Reader};
use crate::{FormatError, ViperFormat};
use std::ops::Range;
use viper_tensor::Tensor;

/// One entry of a checkpoint's tensor directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorEntry {
    /// Tensor name (`layer/param`).
    pub name: String,
    /// Tensor shape.
    pub dims: Vec<usize>,
    /// Byte range of the raw f32 payload within the encoded stream.
    pub payload: Range<usize>,
}

impl TensorEntry {
    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.payload.len()
    }
}

impl ViperFormat {
    /// Walk the tensor directory of an encoded checkpoint (skipping
    /// payloads), returning name/shape/offset entries in file order.
    pub fn tensor_index(bytes: &[u8]) -> Result<Vec<TensorEntry>, FormatError> {
        if bytes.len() < 4 {
            return Err(FormatError::Truncated {
                context: "crc footer",
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let mut r = Reader::new(body);
        if r.take(4, "magic")? != b"VIPR" {
            return Err(FormatError::BadMagic);
        }
        let _version = r.u32("version")?;
        let _name = r.string("model name")?;
        let _iteration = r.u64("iteration")?;
        let ntensors = r.u32("tensor count")? as usize;
        let mut entries = Vec::with_capacity(ntensors);
        for _ in 0..ntensors {
            let name = r.string("tensor name")?;
            let rank = r.u32("tensor rank")? as usize;
            if rank > 8 {
                return Err(FormatError::Corrupt(format!("unreasonable rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64("tensor dim")? as usize);
            }
            let n: usize = dims.iter().product();
            let start = r.position();
            r.skip(n * 4, "tensor payload")?;
            entries.push(TensorEntry {
                name,
                dims,
                payload: start..start + n * 4,
            });
        }
        Ok(entries)
    }

    /// Decode a single tensor by name from an encoded checkpoint, touching
    /// only its directory entry and payload bytes.
    pub fn read_tensor(bytes: &[u8], name: &str) -> Result<Tensor, FormatError> {
        let entries = Self::tensor_index(bytes)?;
        let entry = entries
            .into_iter()
            .find(|e| e.name == name)
            .ok_or_else(|| FormatError::Corrupt(format!("no tensor named {name}")))?;
        let payload = &bytes[entry.payload.clone()];
        let data = bytes_to_f32s(payload)?;
        Tensor::from_vec(data, &entry.dims).map_err(|e| FormatError::Corrupt(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Checkpoint, CheckpointFormat};

    fn sample() -> Checkpoint {
        Checkpoint::new(
            "m",
            9,
            vec![
                (
                    "conv/kernel".into(),
                    Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]).unwrap(),
                ),
                (
                    "conv/bias".into(),
                    Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap(),
                ),
                ("dense/kernel".into(), Tensor::full(&[10, 10], 0.5)),
            ],
        )
    }

    #[test]
    fn index_lists_all_tensors_in_order() {
        let bytes = ViperFormat.encode(&sample());
        let idx = ViperFormat::tensor_index(&bytes).unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx[0].name, "conv/kernel");
        assert_eq!(idx[0].dims, vec![2, 3, 4]);
        assert_eq!(idx[0].byte_len(), 24 * 4);
        assert_eq!(idx[2].name, "dense/kernel");
        // Ranges are disjoint and ascending.
        assert!(idx[0].payload.end <= idx[1].payload.start);
        assert!(idx[1].payload.end <= idx[2].payload.start);
    }

    #[test]
    fn read_tensor_matches_full_decode() {
        let ckpt = sample();
        let bytes = ViperFormat.encode(&ckpt);
        for (name, tensor) in &ckpt.tensors {
            let partial = ViperFormat::read_tensor(&bytes, name).unwrap();
            assert_eq!(&partial, tensor, "{name}");
        }
    }

    #[test]
    fn missing_tensor_is_an_error() {
        let bytes = ViperFormat.encode(&sample());
        assert!(matches!(
            ViperFormat::read_tensor(&bytes, "ghost"),
            Err(FormatError::Corrupt(_))
        ));
    }

    #[test]
    fn partial_read_tolerates_payload_corruption_elsewhere() {
        // Corrupt the *last* tensor's payload; reading the first must still
        // succeed (that's the latency-for-integrity trade the API makes).
        let ckpt = sample();
        let mut bytes = ViperFormat.encode(&ckpt);
        let idx = ViperFormat::tensor_index(&bytes).unwrap();
        let last = idx.last().unwrap().payload.clone();
        bytes[last.start + 4] ^= 0xFF;
        let first = ViperFormat::read_tensor(&bytes, "conv/kernel").unwrap();
        assert_eq!(&first, ckpt.tensor("conv/kernel").unwrap());
        // Whereas the checked full decode rejects the corruption.
        assert!(ViperFormat.decode(&bytes).is_err());
    }

    #[test]
    fn index_rejects_foreign_bytes() {
        assert!(ViperFormat::tensor_index(b"definitely not a checkpoint").is_err());
        assert!(ViperFormat::tensor_index(&[]).is_err());
    }
}
