//! CRC32 (IEEE 802.3 polynomial), used for checkpoint integrity footers
//! and per-chunk transport checksums.
//!
//! Two kernels compute the same function:
//!
//! * [`crc32`] — slice-by-8: eight 256-entry tables consumed 8 input bytes
//!   per iteration, cutting the table-lookup dependency chain roughly 8×
//!   versus the bytewise loop. This is the hot-path kernel; per-chunk CRC
//!   on a multi-GiB checkpoint is the dominant CPU cost of reliable
//!   delivery.
//! * [`crc32_bytewise`] — the original byte-at-a-time reference, kept as
//!   the equality oracle for tests and the before/after baseline for the
//!   `hotpath` bench.

const POLY: u32 = 0xEDB8_8320;

fn byte_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[i] = crc;
        i += 1;
    }
    t
}

/// Eight tables: `tables[0]` is the classic bytewise table; `tables[k][b]`
/// advances the CRC of byte `b` through `k` additional zero bytes, letting
/// the main loop fold 8 input bytes per iteration.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        t[0] = byte_table();
        for k in 1..8 {
            for b in 0..256 {
                let prev = t[k - 1][b];
                t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC32 of a byte slice (slice-by-8 kernel).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = tables();
    let mut crc = 0xFFFF_FFFFu32;

    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][((lo >> 24) & 0xFF) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][((hi >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC32 of a byte slice, one byte per iteration. Reference implementation;
/// prefer [`crc32`] everywhere outside tests and baselines.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"checkpoint-payload");
        let mut flipped = b"checkpoint-payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }

    #[test]
    fn slice_by_8_matches_bytewise_reference() {
        // Deterministic pseudo-random fill; no RNG dependency needed.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        };

        // Empty and tiny inputs.
        assert_eq!(crc32(b""), crc32_bytewise(b""));
        assert_eq!(crc32(b"x"), crc32_bytewise(b"x"));

        // Every length around the 8-byte kernel boundary, so the remainder
        // loop is exercised for all 8 residues.
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|_| next()).collect();
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }

        // Unaligned starts: the kernel must not assume 8-byte alignment of
        // the slice pointer.
        let data: Vec<u8> = (0..1024).map(|_| next()).collect();
        for skip in 0..8usize {
            assert_eq!(
                crc32(&data[skip..]),
                crc32_bytewise(&data[skip..]),
                "skip {skip}"
            );
        }

        // Multi-MiB input with a non-multiple-of-8 tail.
        let big: Vec<u8> = (0..3 * 1024 * 1024 + 5).map(|_| next()).collect();
        assert_eq!(crc32(&big), crc32_bytewise(&big));
    }
}
