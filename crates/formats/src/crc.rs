//! CRC32 (IEEE 802.3 polynomial), used for checkpoint integrity footers
//! and per-chunk transport checksums.
//!
//! Several kernels compute the same function, and a [`Crc32Kernel`]
//! dispatch layer picks the fastest one **once, at startup**, after
//! proving it byte-identical to the table reference on a self-test
//! corpus. Every public entry point — [`crc32`], the streaming
//! [`Crc32`], and the block-parallel [`crc32_parallel`] — routes through
//! the selected kernel, so the fused encoder, the fabric's receive-side
//! chunk verify, and relay re-serve all ride it with no call-site
//! changes:
//!
//! * **CLMUL** — PCLMULQDQ carry-less-multiply folding on `x86_64`
//!   (requires the `pclmulqdq` + `sse4.1` CPU features, detected at
//!   runtime): four 128-bit lanes fold 64 input bytes per iteration,
//!   an order of magnitude past the table kernels on multi-MiB blocks.
//! * [`crc32`] via **slice-by-16** — sixteen 256-entry tables consume 16
//!   input bytes per iteration. The portable kernel, and the forced
//!   fallback under `VIPER_FORCE_PORTABLE_CRC=1`.
//! * [`crc32_parallel`] — splits large inputs into blocks, checksums them
//!   (with the dispatched kernel) on the rayon pool, and merges the
//!   partial CRCs algebraically with [`crc32_combine`] — no byte is read
//!   twice. On hosts without CLMUL this *is* the accelerated path for
//!   big one-shot checksums: portable block parallelism over the
//!   combine algebra.
//! * [`crc32_bytewise`] — the original byte-at-a-time reference, kept as
//!   the equality oracle for tests, the self-test ladder, and the
//!   before/after baseline for the `hotpath` bench.
//!
//! Kernel choice changes **wall-clock speed only**: every kernel returns
//! bit-identical checksums (enforced by the startup self-test and the
//! kernel-equivalence proptests), and no virtual-clock charge anywhere
//! reads the kernel, so simulated timelines are unaffected.
//!
//! [`Crc32`] is the streaming form of [`crc32`]: feed bytes in any split
//! with [`Crc32::update`] and [`Crc32::finalize`] at the end. The fused
//! encoder uses it to checksum serialized bytes in the same pass that
//! produces them. [`crc32_combine`] stitches independently computed CRCs
//! together (`crc(A ‖ B)` from `crc(A)`, `crc(B)`, `len(B)`), which both
//! parallel block CRCs and the encoder's footer derivation ride on.

const POLY: u32 = 0xEDB8_8320;

fn byte_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[i] = crc;
        i += 1;
    }
    t
}

/// Sixteen tables: `tables[0]` is the classic bytewise table; `tables[k][b]`
/// advances the CRC of byte `b` through `k` additional zero bytes, letting
/// the main loop fold 16 input bytes per iteration.
fn tables() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 16];
        t[0] = byte_table();
        for k in 1..16 {
            for b in 0..256 {
                let prev = t[k - 1][b];
                t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Slice-by-16 state update: the portable hot-path kernel.
#[inline]
fn update_slice16(mut crc: u32, bytes: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][((a >> 24) & 0xFF) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][((b >> 24) & 0xFF) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][((d >> 24) & 0xFF) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][((e >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// PCLMULQDQ carry-less-multiply folding kernel (`x86_64` only).
///
/// The classic Intel white-paper construction for the *reflected* IEEE
/// polynomial: four 128-bit accumulators fold 64 input bytes per
/// iteration through `x^512`-distance constants, collapse to one lane,
/// fold the remaining 16-byte blocks, then reduce 128 → 64 → 32 bits
/// with a Barrett reduction. Operates on the raw (pre-inverted) CRC
/// state so it splices into the streaming state machine at any offset;
/// sub-16-byte heads/tails go through the slice-by-16 table kernel,
/// which keeps every split byte-exact.
#[cfg(target_arch = "x86_64")]
mod clmul {
    /// `x^(4·128+32) mod P` and `x^(4·128-32) mod P` (64-byte fold pair),
    /// reflected-domain, bit-reversed with the implicit +1 — the standard
    /// published constants for CRC-32/IEEE.
    const K1: i64 = 0x0001_5444_2bd4;
    const K2: i64 = 0x0001_c6e4_1596;
    /// `x^(128+32) mod P` / `x^(128-32) mod P` (16-byte fold pair).
    const K3: i64 = 0x0001_7519_97d0;
    const K4: i64 = 0x0000_ccaa_009e;
    /// `x^64 mod P` (128 → 64 reduction).
    const K5: i64 = 0x0001_63cd_6124;
    /// The polynomial `P'` and Barrett constant `u'` for the final
    /// 64 → 32 reduction.
    const PX: i64 = 0x0001_db71_0641;
    const UP: i64 = 0x0001_f701_1641;

    /// Whether the host CPU can run this kernel.
    pub(super) fn available() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Raw-state CRC update over `bytes`. Arbitrary lengths: the aligned
    /// middle runs the folded SIMD loop, head/tail bytes fall back to the
    /// table kernel. Safe wrapper — callers need not check CPU features
    /// beyond [`available`].
    pub(super) fn update(state: u32, bytes: &[u8]) -> u32 {
        if bytes.len() < 64 {
            return super::update_slice16(state, bytes);
        }
        let simd_len = bytes.len() & !15;
        // SAFETY: gated on `available()` by the dispatch layer; the
        // kernel itself only reads `bytes[..simd_len]` via unaligned
        // loads, and `simd_len >= 64` and is a multiple of 16 here.
        let state = unsafe { fold_blocks(state, &bytes[..simd_len]) };
        super::update_slice16(state, &bytes[simd_len..])
    }

    /// The folded SIMD loop. `bytes.len()` must be ≥ 64 and a multiple
    /// of 16.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn fold_blocks(state: u32, bytes: &[u8]) -> u32 {
        use std::arch::x86_64::*;
        debug_assert!(bytes.len() >= 64 && bytes.len().is_multiple_of(16));

        /// One 128-bit fold: carry the accumulator `a` forward across the
        /// distance encoded by `keys` and absorb the next block `b`.
        #[inline]
        #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
        unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
            let lo = _mm_clmulepi64_si128(a, keys, 0x00);
            let hi = _mm_clmulepi64_si128(a, keys, 0x11);
            _mm_xor_si128(_mm_xor_si128(lo, hi), b)
        }

        let mut p = bytes.as_ptr() as *const __m128i;
        let mut len = bytes.len();
        // Seed four lanes with the first 64 bytes; the running CRC state
        // folds into the low dword of the first lane.
        let mut x0 = _mm_loadu_si128(p);
        let mut x1 = _mm_loadu_si128(p.add(1));
        let mut x2 = _mm_loadu_si128(p.add(2));
        let mut x3 = _mm_loadu_si128(p.add(3));
        x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(state as i32));
        p = p.add(4);
        len -= 64;

        let k1k2 = _mm_set_epi64x(K2, K1);
        while len >= 64 {
            x0 = fold16(x0, _mm_loadu_si128(p), k1k2);
            x1 = fold16(x1, _mm_loadu_si128(p.add(1)), k1k2);
            x2 = fold16(x2, _mm_loadu_si128(p.add(2)), k1k2);
            x3 = fold16(x3, _mm_loadu_si128(p.add(3)), k1k2);
            p = p.add(4);
            len -= 64;
        }

        // Collapse the four lanes into one, then fold the 16-byte tail
        // blocks.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x0, x1, k3k4);
        x = fold16(x, x2, k3k4);
        x = fold16(x, x3, k3k4);
        while len >= 16 {
            x = fold16(x, _mm_loadu_si128(p), k3k4);
            p = p.add(1);
            len -= 16;
        }

        // Reduce 128 → 64 bits.
        let lo32 = _mm_set_epi32(0, !0, 0, !0);
        let t = _mm_clmulepi64_si128(x, k3k4, 0x10);
        x = _mm_xor_si128(_mm_srli_si128(x, 8), t);
        let k5 = _mm_set_epi64x(0, K5);
        let t = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), k5, 0x00);
        x = _mm_xor_si128(_mm_srli_si128(x, 4), t);

        // Barrett reduction 64 → 32 bits.
        let pu = _mm_set_epi64x(UP, PX);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), pu, 0x10);
        let t2 = _mm_clmulepi64_si128(_mm_and_si128(t1, lo32), pu, 0x00);
        x = _mm_xor_si128(x, t2);
        _mm_extract_epi32(x, 1) as u32
    }
}

/// A CRC32 kernel the dispatch layer can select. All kernels compute the
/// identical function; they differ only in wall-clock speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crc32Kernel {
    /// PCLMULQDQ carry-less-multiply folding (`x86_64` with the
    /// `pclmulqdq` + `sse4.1` features). The hardware kernel.
    Clmul,
    /// Slice-by-16 table kernel. Portable; always available.
    Slice16,
    /// Byte-at-a-time reference. The oracle, never auto-selected.
    Bytewise,
}

impl Crc32Kernel {
    /// Whether this kernel can run on the host CPU.
    pub fn available(self) -> bool {
        match self {
            #[cfg(target_arch = "x86_64")]
            Crc32Kernel::Clmul => clmul::available(),
            #[cfg(not(target_arch = "x86_64"))]
            Crc32Kernel::Clmul => false,
            Crc32Kernel::Slice16 | Crc32Kernel::Bytewise => true,
        }
    }

    /// Stable label for benches, traces, and reports.
    pub fn label(self) -> &'static str {
        match self {
            Crc32Kernel::Clmul => "clmul",
            Crc32Kernel::Slice16 => "slice16",
            Crc32Kernel::Bytewise => "bytewise",
        }
    }

    /// Raw-state update with this specific kernel. Panics if the kernel
    /// is not [`available`](Self::available) on this host.
    fn update_state(self, state: u32, bytes: &[u8]) -> u32 {
        match self {
            #[cfg(target_arch = "x86_64")]
            Crc32Kernel::Clmul => clmul::update(state, bytes),
            #[cfg(not(target_arch = "x86_64"))]
            Crc32Kernel::Clmul => unreachable!("CLMUL kernel is x86_64-only"),
            Crc32Kernel::Slice16 => update_slice16(state, bytes),
            Crc32Kernel::Bytewise => {
                let t = &tables()[0];
                let mut crc = state;
                for &b in bytes {
                    crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
                }
                crc
            }
        }
    }
}

/// Candidate self-test: run `kernel` against the slice-by-16 reference
/// over lengths straddling every internal boundary (sub-16 tail, sub-64
/// seed, lane collapse) plus a split-state continuation, and require
/// bit-identical answers. A kernel that fails is skipped, never selected
/// — "fastest *proven-identical*".
fn proves_identical(kernel: Crc32Kernel) -> bool {
    let mut data = [0u8; 257];
    let mut s = 0x9E37_79B9_7F4A_7C15u64;
    for b in data.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (s >> 56) as u8;
    }
    for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 128, 255, 257] {
        let d = &data[..len];
        if kernel.update_state(0xFFFF_FFFF, d) != update_slice16(0xFFFF_FFFF, d) {
            return false;
        }
    }
    // Mid-stream splice: state from a ragged prefix must continue exactly.
    let mid = update_slice16(0xFFFF_FFFF, &data[..37]);
    kernel.update_state(mid, &data[37..]) == update_slice16(mid, &data[37..])
}

/// The kernel every dispatching entry point uses, chosen once per
/// process: the forced portable kernel if `VIPER_FORCE_PORTABLE_CRC` is
/// set (to anything but `0`/empty), otherwise the fastest available
/// kernel that passes the [self-test](proves_identical) — CLMUL where
/// the CPU supports it, slice-by-16 everywhere else.
pub fn active_kernel() -> Crc32Kernel {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<Crc32Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced = std::env::var("VIPER_FORCE_PORTABLE_CRC")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if !forced && Crc32Kernel::Clmul.available() && proves_identical(Crc32Kernel::Clmul) {
            return Crc32Kernel::Clmul;
        }
        Crc32Kernel::Slice16
    })
}

/// Raw-state update through the process-wide active kernel.
#[inline]
fn update_raw(crc: u32, bytes: &[u8]) -> u32 {
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        Crc32Kernel::Clmul => clmul::update(crc, bytes),
        _ => update_slice16(crc, bytes),
    }
}

/// CRC32 of a byte slice, dispatched to the fastest proven kernel (see
/// [`active_kernel`]).
pub fn crc32(bytes: &[u8]) -> u32 {
    !update_raw(0xFFFF_FFFF, bytes)
}

/// CRC32 of a byte slice with an explicitly chosen kernel. For benches
/// and kernel-equivalence tests; production paths use the dispatched
/// [`crc32`]. Panics if `kernel` is unavailable on this host.
pub fn crc32_with(kernel: Crc32Kernel, bytes: &[u8]) -> u32 {
    assert!(
        kernel.available(),
        "kernel {:?} unavailable on this host",
        kernel
    );
    !kernel.update_state(0xFFFF_FFFF, bytes)
}

/// CRC32 of a byte slice, one byte per iteration. Reference implementation;
/// prefer [`crc32`] everywhere outside tests and baselines.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Streaming CRC32 state: equivalent to [`crc32`] over the concatenation of
/// every slice passed to [`update`](Self::update), regardless of how the
/// input is split. `Copy` so callers can snapshot mid-stream state (the
/// fused encoder peeks at partial-chunk CRCs without consuming them).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state; `finalize` with no updates yields `crc32(b"")`.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes` (dispatched to the active kernel; see
    /// [`active_kernel`]).
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_raw(self.state, bytes);
    }

    /// The CRC32 of everything absorbed so far. Non-consuming: the state
    /// remains valid for further updates.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// A GF(2) operator advancing a CRC across `len` bytes of zeros, the
/// building block of [`crc32_combine`]. Precompute once per block length
/// when folding many equally-sized partial CRCs: applying the operator is
/// 32 conditional XORs, while building it is ~`log2(len)` 32×32 matrix
/// squarings.
#[derive(Clone, Debug)]
pub struct CrcShift {
    mat: [u32; 32],
}

/// `out[n] = mat * vec[n]` over GF(2): each matrix column is a u32 bit
/// vector; multiplying by a vector XORs the columns selected by its bits.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    for (o, &col) in out.iter_mut().zip(mat.iter()) {
        *o = gf2_times(mat, col);
    }
    out
}

fn gf2_matrix_mult(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    for (o, &col) in out.iter_mut().zip(b.iter()) {
        *o = gf2_times(a, col);
    }
    out
}

impl CrcShift {
    /// Operator for `len` zero bytes (zlib's squaring construction: build
    /// the one-byte operator, then square-and-multiply over the bits of
    /// `len`).
    pub fn new(len: u64) -> Self {
        // One-zero-*bit* operator: row 0 is the polynomial, the rest shift.
        let mut odd = [0u32; 32];
        odd[0] = POLY;
        let mut row = 1u32;
        for col in odd.iter_mut().skip(1) {
            *col = row;
            row <<= 1;
        }
        // 1 bit -> 2 bits -> 4 bits -> 8 bits = one zero byte.
        let even = gf2_matrix_square(&odd);
        let odd = gf2_matrix_square(&even);
        let byte_op = gf2_matrix_square(&odd);

        // Identity, then multiply in byte_op^(2^k) for each set bit of len.
        let mut mat = [0u32; 32];
        for (n, col) in mat.iter_mut().enumerate() {
            *col = 1u32 << n;
        }
        let mut op = byte_op;
        let mut rem = len;
        while rem != 0 {
            if rem & 1 != 0 {
                mat = gf2_matrix_mult(&op, &mat);
            }
            rem >>= 1;
            if rem != 0 {
                op = gf2_matrix_square(&op);
            }
        }
        CrcShift { mat }
    }

    /// Advance `crc` across this operator's span of zero bytes.
    pub fn apply(&self, crc: u32) -> u32 {
        gf2_times(&self.mat, crc)
    }
}

/// CRC32 of the concatenation `A ‖ B` given `crc_a = crc32(A)`,
/// `crc_b = crc32(B)`, and `len_b = B.len()` — without touching any bytes.
/// This is the zlib `crc32_combine` identity: shifting `crc_a` across
/// `len_b` zero bytes and XOR-ing `crc_b` accounts for B's contribution
/// exactly. With `crc_a = 0` (the CRC of the empty string) it degrades to
/// a pure shift, which the fused encoder uses to *strip* a known prefix:
/// `crc(B) = crc(A ‖ B) ^ crc32_combine(crc(A), 0, len(B))`.
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    CrcShift::new(len_b).apply(crc_a) ^ crc_b
}

/// Block size for [`crc32_parallel`]: large enough that per-block combine
/// cost (a handful of matrix ops) is noise, small enough to load-balance.
const PAR_BLOCK: usize = 1 << 20;

/// Inputs below this run on the caller's thread; rayon dispatch overhead
/// would dominate.
const PAR_MIN: usize = 4 * PAR_BLOCK;

/// CRC32 of a byte slice, block-parallel: splits into ~1 MiB blocks,
/// checksums them concurrently on the rayon pool, then folds the partial
/// CRCs with [`crc32_combine`]. Falls back to single-threaded [`crc32`]
/// below 4 MiB. Always returns exactly `crc32(bytes)`.
pub fn crc32_parallel(bytes: &[u8]) -> u32 {
    use rayon::prelude::*;
    if bytes.len() < PAR_MIN {
        return crc32(bytes);
    }
    // The vendored rayon shim parallelizes `for_each` over a mutable
    // target, so partial CRCs land positionally in a preallocated vec —
    // the same pattern the chunk-CRC pool uses.
    let nblocks = bytes.len().div_ceil(PAR_BLOCK);
    let mut parts = vec![0u32; nblocks];
    parts.par_iter_mut().enumerate().for_each(|(i, out)| {
        let start = i * PAR_BLOCK;
        let end = (start + PAR_BLOCK).min(bytes.len());
        *out = crc32(&bytes[start..end]);
    });
    // All blocks but the last share a length, so build that shift operator
    // once and reuse it across the fold.
    let full = CrcShift::new(PAR_BLOCK as u64);
    let mut acc = 0u32; // crc32 of the empty prefix
    for (i, &crc) in parts.iter().enumerate() {
        let len = if i + 1 == nblocks {
            (bytes.len() - i * PAR_BLOCK) as u64
        } else {
            PAR_BLOCK as u64
        };
        acc = if len == PAR_BLOCK as u64 {
            full.apply(acc) ^ crc
        } else {
            crc32_combine(acc, crc, len)
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"checkpoint-payload");
        let mut flipped = b"checkpoint-payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }

    fn lcg_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn slice_by_16_matches_bytewise_reference() {
        // Empty and tiny inputs.
        assert_eq!(crc32(b""), crc32_bytewise(b""));
        assert_eq!(crc32(b"x"), crc32_bytewise(b"x"));

        // Every length around the 16-byte kernel boundary, so the remainder
        // loop is exercised for all 16 residues.
        for len in 0..96usize {
            let data = lcg_bytes(0x1234_5678_9abc_def0 + len as u64, len);
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }

        // Unaligned starts: the kernel must not assume 16-byte alignment of
        // the slice pointer.
        let data = lcg_bytes(7, 1024);
        for skip in 0..16usize {
            assert_eq!(
                crc32(&data[skip..]),
                crc32_bytewise(&data[skip..]),
                "skip {skip}"
            );
        }

        // Multi-MiB input with a non-multiple-of-16 tail.
        let big = lcg_bytes(99, 3 * 1024 * 1024 + 5);
        assert_eq!(crc32(&big), crc32_bytewise(&big));
    }

    #[test]
    fn streaming_matches_oneshot_for_any_split() {
        let data = lcg_bytes(11, 4096 + 3);
        let oneshot = crc32(&data);
        for split in [0, 1, 7, 15, 16, 17, 100, 4095, 4096, data.len()] {
            let mut s = Crc32::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), oneshot, "split {split}");
        }
        // Many tiny updates.
        let mut s = Crc32::new();
        for b in data.chunks(3) {
            s.update(b);
        }
        assert_eq!(s.finalize(), oneshot);
        // finalize is non-consuming / resumable.
        let mut s = Crc32::new();
        s.update(&data[..100]);
        assert_eq!(s.finalize(), crc32(&data[..100]));
        s.update(&data[100..]);
        assert_eq!(s.finalize(), oneshot);
    }

    #[test]
    fn combine_matches_sequential_known_splits() {
        let data = lcg_bytes(21, 3 * 1024 * 1024 + 7);
        let whole = crc32_bytewise(&data);
        for split in [
            0usize,
            1,
            15,
            16,
            4095,
            4096,
            1 << 20,
            data.len() - 1,
            data.len(),
        ] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split {split}"
            );
        }
        // Empty-empty edge.
        assert_eq!(crc32_combine(crc32(b""), crc32(b""), 0), crc32(b""));
    }

    #[test]
    fn combine_strips_known_prefix() {
        // crc(B) = crc(AB) ^ shift(crc(A), len B) — the fused encoder's
        // footer derivation.
        let data = lcg_bytes(33, 70_000);
        let (a, b) = data.split_at(12_345);
        let whole = crc32(&data);
        let stripped = whole ^ crc32_combine(crc32(a), 0, b.len() as u64);
        assert_eq!(stripped, crc32(b));
    }

    #[test]
    fn parallel_matches_sequential() {
        // Below, at, and above the parallel threshold; ragged tails.
        for len in [
            0usize,
            1,
            PAR_MIN - 1,
            PAR_MIN,
            PAR_MIN + 1,
            6 * PAR_BLOCK + 12_345,
        ] {
            let data = lcg_bytes(55 + len as u64, len);
            assert_eq!(crc32_parallel(&data), crc32(&data), "len {len}");
        }
    }

    #[test]
    fn crc_shift_reuse_equals_fresh_combine() {
        let shift = CrcShift::new(777);
        for crc in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(shift.apply(crc), crc32_combine(crc, 0, 777));
        }
    }

    #[test]
    fn every_available_kernel_matches_bytewise_oracle() {
        for kernel in [
            Crc32Kernel::Clmul,
            Crc32Kernel::Slice16,
            Crc32Kernel::Bytewise,
        ] {
            if !kernel.available() {
                continue;
            }
            // Boundary lengths around the 16-byte tail loop, the 64-byte
            // SIMD seed, and the lane-collapse point.
            for len in [
                0usize, 1, 15, 16, 17, 48, 63, 64, 65, 79, 80, 127, 128, 129, 255, 256, 1000,
            ] {
                let data = lcg_bytes(0xC0DE + len as u64, len);
                assert_eq!(
                    crc32_with(kernel, &data),
                    crc32_bytewise(&data),
                    "kernel {} len {len}",
                    kernel.label()
                );
            }
            // Unaligned starts into a large buffer.
            let data = lcg_bytes(0xA11A, 65536 + 7);
            for skip in 0..16usize {
                assert_eq!(
                    crc32_with(kernel, &data[skip..]),
                    crc32_bytewise(&data[skip..]),
                    "kernel {} skip {skip}",
                    kernel.label()
                );
            }
            // Multi-MiB block (the throughput case the dispatch exists for).
            let big = lcg_bytes(0xB16, 3 * 1024 * 1024 + 9);
            assert_eq!(
                crc32_with(kernel, &big),
                crc32_bytewise(&big),
                "kernel {}",
                kernel.label()
            );
        }
    }

    #[test]
    fn clmul_state_splices_with_table_kernel() {
        // Raw-state continuation across kernels: a prefix absorbed by one
        // kernel must hand off exactly to any other (the streaming Crc32
        // relies on this when the dispatch choice differs across tests).
        if !Crc32Kernel::Clmul.available() {
            return;
        }
        let data = lcg_bytes(0x5EED, 10_000);
        for split in [0usize, 1, 16, 37, 64, 100, 4096, 9_999, 10_000] {
            let mid = Crc32Kernel::Slice16.update_state(0xFFFF_FFFF, &data[..split]);
            let a = Crc32Kernel::Clmul.update_state(mid, &data[split..]);
            let b = Crc32Kernel::Slice16.update_state(mid, &data[split..]);
            assert_eq!(a, b, "split {split}");
        }
    }

    #[test]
    fn active_kernel_is_proven_identical() {
        let k = active_kernel();
        assert!(k.available());
        assert!(proves_identical(k));
    }
}
