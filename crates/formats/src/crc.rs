//! Table-driven CRC32 (IEEE 802.3 polynomial), used for checkpoint
//! integrity footers.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"checkpoint-payload");
        let mut flipped = b"checkpoint-payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }
}
