//! CRC32 (IEEE 802.3 polynomial), used for checkpoint integrity footers
//! and per-chunk transport checksums.
//!
//! Three kernels compute the same function:
//!
//! * [`crc32`] — slice-by-16: sixteen 256-entry tables consume 16 input
//!   bytes per iteration, cutting the table-lookup dependency chain
//!   roughly 16× versus the bytewise loop. This is the hot-path kernel;
//!   per-chunk CRC on a multi-GiB checkpoint is the dominant CPU cost of
//!   reliable delivery.
//! * [`crc32_parallel`] — splits large inputs into blocks, checksums them
//!   on the rayon pool, and merges the partial CRCs algebraically with
//!   [`crc32_combine`] — no byte is read twice.
//! * [`crc32_bytewise`] — the original byte-at-a-time reference, kept as
//!   the equality oracle for tests and the before/after baseline for the
//!   `hotpath` bench.
//!
//! [`Crc32`] is the streaming form of [`crc32`]: feed bytes in any split
//! with [`Crc32::update`] and [`Crc32::finalize`] at the end. The fused
//! encoder uses it to checksum serialized bytes in the same pass that
//! produces them. [`crc32_combine`] stitches independently computed CRCs
//! together (`crc(A ‖ B)` from `crc(A)`, `crc(B)`, `len(B)`), which both
//! parallel block CRCs and the encoder's footer derivation ride on.

const POLY: u32 = 0xEDB8_8320;

fn byte_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[i] = crc;
        i += 1;
    }
    t
}

/// Sixteen tables: `tables[0]` is the classic bytewise table; `tables[k][b]`
/// advances the CRC of byte `b` through `k` additional zero bytes, letting
/// the main loop fold 16 input bytes per iteration.
fn tables() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 16];
        t[0] = byte_table();
        for k in 1..16 {
            for b in 0..256 {
                let prev = t[k - 1][b];
                t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

#[inline]
fn update_raw(mut crc: u32, bytes: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][((a >> 24) & 0xFF) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][((b >> 24) & 0xFF) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][((d >> 24) & 0xFF) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][((e >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32 of a byte slice (slice-by-16 kernel).
pub fn crc32(bytes: &[u8]) -> u32 {
    !update_raw(0xFFFF_FFFF, bytes)
}

/// CRC32 of a byte slice, one byte per iteration. Reference implementation;
/// prefer [`crc32`] everywhere outside tests and baselines.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let t = &tables()[0];
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Streaming CRC32 state: equivalent to [`crc32`] over the concatenation of
/// every slice passed to [`update`](Self::update), regardless of how the
/// input is split. `Copy` so callers can snapshot mid-stream state (the
/// fused encoder peeks at partial-chunk CRCs without consuming them).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state; `finalize` with no updates yields `crc32(b"")`.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes` (slice-by-16 kernel).
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_raw(self.state, bytes);
    }

    /// The CRC32 of everything absorbed so far. Non-consuming: the state
    /// remains valid for further updates.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// A GF(2) operator advancing a CRC across `len` bytes of zeros, the
/// building block of [`crc32_combine`]. Precompute once per block length
/// when folding many equally-sized partial CRCs: applying the operator is
/// 32 conditional XORs, while building it is ~`log2(len)` 32×32 matrix
/// squarings.
#[derive(Clone, Debug)]
pub struct CrcShift {
    mat: [u32; 32],
}

/// `out[n] = mat * vec[n]` over GF(2): each matrix column is a u32 bit
/// vector; multiplying by a vector XORs the columns selected by its bits.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    for (o, &col) in out.iter_mut().zip(mat.iter()) {
        *o = gf2_times(mat, col);
    }
    out
}

fn gf2_matrix_mult(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    for (o, &col) in out.iter_mut().zip(b.iter()) {
        *o = gf2_times(a, col);
    }
    out
}

impl CrcShift {
    /// Operator for `len` zero bytes (zlib's squaring construction: build
    /// the one-byte operator, then square-and-multiply over the bits of
    /// `len`).
    pub fn new(len: u64) -> Self {
        // One-zero-*bit* operator: row 0 is the polynomial, the rest shift.
        let mut odd = [0u32; 32];
        odd[0] = POLY;
        let mut row = 1u32;
        for col in odd.iter_mut().skip(1) {
            *col = row;
            row <<= 1;
        }
        // 1 bit -> 2 bits -> 4 bits -> 8 bits = one zero byte.
        let even = gf2_matrix_square(&odd);
        let odd = gf2_matrix_square(&even);
        let byte_op = gf2_matrix_square(&odd);

        // Identity, then multiply in byte_op^(2^k) for each set bit of len.
        let mut mat = [0u32; 32];
        for (n, col) in mat.iter_mut().enumerate() {
            *col = 1u32 << n;
        }
        let mut op = byte_op;
        let mut rem = len;
        while rem != 0 {
            if rem & 1 != 0 {
                mat = gf2_matrix_mult(&op, &mat);
            }
            rem >>= 1;
            if rem != 0 {
                op = gf2_matrix_square(&op);
            }
        }
        CrcShift { mat }
    }

    /// Advance `crc` across this operator's span of zero bytes.
    pub fn apply(&self, crc: u32) -> u32 {
        gf2_times(&self.mat, crc)
    }
}

/// CRC32 of the concatenation `A ‖ B` given `crc_a = crc32(A)`,
/// `crc_b = crc32(B)`, and `len_b = B.len()` — without touching any bytes.
/// This is the zlib `crc32_combine` identity: shifting `crc_a` across
/// `len_b` zero bytes and XOR-ing `crc_b` accounts for B's contribution
/// exactly. With `crc_a = 0` (the CRC of the empty string) it degrades to
/// a pure shift, which the fused encoder uses to *strip* a known prefix:
/// `crc(B) = crc(A ‖ B) ^ crc32_combine(crc(A), 0, len(B))`.
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    CrcShift::new(len_b).apply(crc_a) ^ crc_b
}

/// Block size for [`crc32_parallel`]: large enough that per-block combine
/// cost (a handful of matrix ops) is noise, small enough to load-balance.
const PAR_BLOCK: usize = 1 << 20;

/// Inputs below this run on the caller's thread; rayon dispatch overhead
/// would dominate.
const PAR_MIN: usize = 4 * PAR_BLOCK;

/// CRC32 of a byte slice, block-parallel: splits into ~1 MiB blocks,
/// checksums them concurrently on the rayon pool, then folds the partial
/// CRCs with [`crc32_combine`]. Falls back to single-threaded [`crc32`]
/// below 4 MiB. Always returns exactly `crc32(bytes)`.
pub fn crc32_parallel(bytes: &[u8]) -> u32 {
    use rayon::prelude::*;
    if bytes.len() < PAR_MIN {
        return crc32(bytes);
    }
    // The vendored rayon shim parallelizes `for_each` over a mutable
    // target, so partial CRCs land positionally in a preallocated vec —
    // the same pattern the chunk-CRC pool uses.
    let nblocks = bytes.len().div_ceil(PAR_BLOCK);
    let mut parts = vec![0u32; nblocks];
    parts.par_iter_mut().enumerate().for_each(|(i, out)| {
        let start = i * PAR_BLOCK;
        let end = (start + PAR_BLOCK).min(bytes.len());
        *out = crc32(&bytes[start..end]);
    });
    // All blocks but the last share a length, so build that shift operator
    // once and reuse it across the fold.
    let full = CrcShift::new(PAR_BLOCK as u64);
    let mut acc = 0u32; // crc32 of the empty prefix
    for (i, &crc) in parts.iter().enumerate() {
        let len = if i + 1 == nblocks {
            (bytes.len() - i * PAR_BLOCK) as u64
        } else {
            PAR_BLOCK as u64
        };
        acc = if len == PAR_BLOCK as u64 {
            full.apply(acc) ^ crc
        } else {
            crc32_combine(acc, crc, len)
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flip() {
        let a = crc32(b"checkpoint-payload");
        let mut flipped = b"checkpoint-payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }

    fn lcg_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn slice_by_16_matches_bytewise_reference() {
        // Empty and tiny inputs.
        assert_eq!(crc32(b""), crc32_bytewise(b""));
        assert_eq!(crc32(b"x"), crc32_bytewise(b"x"));

        // Every length around the 16-byte kernel boundary, so the remainder
        // loop is exercised for all 16 residues.
        for len in 0..96usize {
            let data = lcg_bytes(0x1234_5678_9abc_def0 + len as u64, len);
            assert_eq!(crc32(&data), crc32_bytewise(&data), "len {len}");
        }

        // Unaligned starts: the kernel must not assume 16-byte alignment of
        // the slice pointer.
        let data = lcg_bytes(7, 1024);
        for skip in 0..16usize {
            assert_eq!(
                crc32(&data[skip..]),
                crc32_bytewise(&data[skip..]),
                "skip {skip}"
            );
        }

        // Multi-MiB input with a non-multiple-of-16 tail.
        let big = lcg_bytes(99, 3 * 1024 * 1024 + 5);
        assert_eq!(crc32(&big), crc32_bytewise(&big));
    }

    #[test]
    fn streaming_matches_oneshot_for_any_split() {
        let data = lcg_bytes(11, 4096 + 3);
        let oneshot = crc32(&data);
        for split in [0, 1, 7, 15, 16, 17, 100, 4095, 4096, data.len()] {
            let mut s = Crc32::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), oneshot, "split {split}");
        }
        // Many tiny updates.
        let mut s = Crc32::new();
        for b in data.chunks(3) {
            s.update(b);
        }
        assert_eq!(s.finalize(), oneshot);
        // finalize is non-consuming / resumable.
        let mut s = Crc32::new();
        s.update(&data[..100]);
        assert_eq!(s.finalize(), crc32(&data[..100]));
        s.update(&data[100..]);
        assert_eq!(s.finalize(), oneshot);
    }

    #[test]
    fn combine_matches_sequential_known_splits() {
        let data = lcg_bytes(21, 3 * 1024 * 1024 + 7);
        let whole = crc32_bytewise(&data);
        for split in [
            0usize,
            1,
            15,
            16,
            4095,
            4096,
            1 << 20,
            data.len() - 1,
            data.len(),
        ] {
            let (a, b) = data.split_at(split);
            assert_eq!(
                crc32_combine(crc32(a), crc32(b), b.len() as u64),
                whole,
                "split {split}"
            );
        }
        // Empty-empty edge.
        assert_eq!(crc32_combine(crc32(b""), crc32(b""), 0), crc32(b""));
    }

    #[test]
    fn combine_strips_known_prefix() {
        // crc(B) = crc(AB) ^ shift(crc(A), len B) — the fused encoder's
        // footer derivation.
        let data = lcg_bytes(33, 70_000);
        let (a, b) = data.split_at(12_345);
        let whole = crc32(&data);
        let stripped = whole ^ crc32_combine(crc32(a), 0, b.len() as u64);
        assert_eq!(stripped, crc32(b));
    }

    #[test]
    fn parallel_matches_sequential() {
        // Below, at, and above the parallel threshold; ragged tails.
        for len in [
            0usize,
            1,
            PAR_MIN - 1,
            PAR_MIN,
            PAR_MIN + 1,
            6 * PAR_BLOCK + 12_345,
        ] {
            let data = lcg_bytes(55 + len as u64, len);
            assert_eq!(crc32_parallel(&data), crc32(&data), "len {len}");
        }
    }

    #[test]
    fn crc_shift_reuse_equals_fresh_combine() {
        let shift = CrcShift::new(777);
        for crc in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(shift.apply(crc), crc32_combine(crc, 0, 777));
        }
    }
}
