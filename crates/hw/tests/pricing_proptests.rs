//! Property tests for the update-pricing model: the invariants behind
//! every latency number the benchmarks report.

use proptest::prelude::*;
use viper_hw::{price_update, CaptureMode, MachineProfile, Route, TransferStrategy};

fn strategies() -> [TransferStrategy; 5] {
    TransferStrategy::fig8_lineup()
}

proptest! {
    /// Update latency grows monotonically with model size, for every
    /// strategy.
    #[test]
    fn latency_monotone_in_bytes(bytes in 1_000_000u64..10_000_000_000, extra in 1_000_000u64..1_000_000_000) {
        let p = MachineProfile::polaris();
        for s in strategies() {
            let small = price_update(&p, s, bytes, 20, 1.0).update_latency();
            let large = price_update(&p, s, bytes + extra, 20, 1.0).update_latency();
            prop_assert!(large > small, "{s:?}");
        }
    }

    /// More tensors never make an update cheaper.
    #[test]
    fn latency_monotone_in_tensor_count(bytes in 1_000_000u64..5_000_000_000, n1 in 1usize..100, dn in 1usize..100) {
        let p = MachineProfile::polaris();
        for s in strategies() {
            let few = price_update(&p, s, bytes, n1, 1.0).update_latency();
            let many = price_update(&p, s, bytes, n1 + dn, 1.0).update_latency();
            prop_assert!(many >= few, "{s:?}");
        }
    }

    /// The memory-first hierarchy always holds: GPU <= Host <= PFS latency
    /// at equal payload (sync mode).
    #[test]
    fn hierarchy_ordering(bytes in 50_000_000u64..10_000_000_000, ntensors in 1usize..100) {
        let p = MachineProfile::polaris();
        let lat = |route| {
            price_update(&p, TransferStrategy { route, mode: CaptureMode::Sync }, bytes, ntensors, 1.0)
                .update_latency()
        };
        prop_assert!(lat(Route::GpuToGpu) <= lat(Route::HostToHost));
        prop_assert!(lat(Route::HostToHost) <= lat(Route::PfsStaging));
    }

    /// Async always stalls less than sync and never lowers total latency.
    #[test]
    fn async_tradeoff_universal(bytes in 10_000_000u64..10_000_000_000, ntensors in 1usize..100) {
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let sync = price_update(&p, TransferStrategy { route, mode: CaptureMode::Sync }, bytes, ntensors, 1.0);
            let asy = price_update(&p, TransferStrategy { route, mode: CaptureMode::Async }, bytes, ntensors, 1.0);
            prop_assert!(asy.stall < sync.stall, "{route:?}");
            prop_assert!(asy.update_latency() >= sync.update_latency(), "{route:?}");
        }
    }

    /// A heavier metadata format can only slow down the PFS route, and
    /// leaves memory routes untouched.
    #[test]
    fn metadata_factor_effects(bytes in 10_000_000u64..5_000_000_000, ntensors in 1usize..100, factor in 1.0f64..8.0) {
        let p = MachineProfile::polaris();
        for s in strategies() {
            let lean = price_update(&p, s, bytes, ntensors, 1.0);
            let heavy = price_update(&p, s, bytes, ntensors, factor);
            if s.route == Route::PfsStaging {
                prop_assert!(heavy.update_latency() >= lean.update_latency());
            } else {
                prop_assert_eq!(heavy, lean);
            }
        }
    }

    /// Stall + post_stall always covers capture-to-apply; components are
    /// finite and non-negative.
    #[test]
    fn components_sane(bytes in 0u64..10_000_000_000, ntensors in 0usize..200) {
        let p = MachineProfile::polaris();
        for s in strategies() {
            let c = price_update(&p, s, bytes, ntensors, 1.0);
            prop_assert!(c.apply <= c.post_stall);
            prop_assert!(c.update_latency() >= c.stall);
        }
    }
}
