//! A shared virtual clock.
//!
//! All modeled hardware durations are accounted against a `SimClock` rather
//! than wall time, so a simulated 8-second PFS write costs nanoseconds of
//! real time. The clock is monotonic and thread-safe: concurrent actors
//! advance it with `advance` (adds to the global time, modeling serialized
//! resource use) or synchronise to a known event time with `advance_to`
//! (models overlapping/asynchronous work completing at an absolute instant).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An instant on the virtual timeline, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Simulation epoch.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Seconds since the simulation epoch.
    ///
    /// Lossy above 2^53 ns (~104 days of virtual time): `f64` cannot
    /// represent every integer nanosecond. Use [`SimInstant::as_nanos`]
    /// wherever exactness matters (telemetry timestamps, comparisons,
    /// arithmetic) and convert to seconds only for display.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer nanoseconds since the simulation epoch — exact at any
    /// magnitude, unlike [`SimInstant::as_secs_f64`].
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant `ns` integer nanoseconds after the simulation epoch.
    #[inline]
    pub fn from_nanos(ns: u64) -> SimInstant {
        SimInstant(ns)
    }

    /// The instant `d` later. (Also available as the `+` operator.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, d: Duration) -> SimInstant {
        SimInstant(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// Duration since an earlier instant (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: SimInstant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for SimInstant {
    type Output = SimInstant;

    fn add(self, d: Duration) -> SimInstant {
        SimInstant::add(self, d)
    }
}

/// A shareable, monotonic virtual clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now_ns.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: Duration) -> SimInstant {
        let ns = d.as_nanos() as u64;
        SimInstant(self.now_ns.fetch_add(ns, Ordering::AcqRel) + ns)
    }

    /// Move the clock forward to `t` if it is currently earlier; returns the
    /// clock value afterwards (which may exceed `t` if another actor raced
    /// ahead). Never moves time backwards.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let mut cur = self.now_ns.load(Ordering::Acquire);
        while cur < t.0 {
            match self
                .now_ns
                .compare_exchange_weak(cur, t.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimInstant(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), SimInstant::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(1));
        c.advance(Duration::from_millis(500));
        assert!((c.now().as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        c.advance_to(SimInstant(1_000));
        assert_eq!(c.now(), SimInstant(1_000));
        // Moving "back" is a no-op.
        c.advance_to(SimInstant(10));
        assert_eq!(c.now(), SimInstant(1_000));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(2));
        assert_eq!(b.now(), a.now());
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(Duration::from_nanos(3));
                    }
                });
            }
        });
        assert_eq!(c.now(), SimInstant(8 * 1000 * 3));
    }

    #[test]
    fn integer_nanos_are_exact_where_f64_seconds_are_not() {
        // 2^53 + 1 ns is not representable as an f64 second count.
        let t = SimInstant::from_nanos((1 << 53) + 1);
        assert_eq!(t.as_nanos(), (1 << 53) + 1);
        let round_tripped = (t.as_secs_f64() * 1e9) as u64;
        assert_ne!(round_tripped, t.as_nanos(), "f64 path is lossy here");
        let c = SimClock::new();
        c.advance_to(t);
        assert_eq!(c.now().as_nanos(), t.as_nanos());
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimInstant(2_000_000_000);
        assert_eq!(t.as_secs_f64(), 2.0);
        let later = t.add(Duration::from_secs(1));
        assert_eq!(later.since(t), Duration::from_secs(1));
        assert_eq!(t.since(later), Duration::ZERO);
    }
}
