//! Storage tier identities and their cost models.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The storage tiers available on a simulated compute node, ordered from
/// fastest to slowest — the "memory-first" hierarchy Viper exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// GPU high-bandwidth memory (A100 HBM2e class).
    GpuMem,
    /// Host DRAM.
    HostMem,
    /// Node-local NVMe SSD.
    LocalSsd,
    /// The parallel file system (Lustre class), shared across nodes.
    Pfs,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 4] = [Tier::GpuMem, Tier::HostMem, Tier::LocalSsd, Tier::Pfs];

    /// Short human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Tier::GpuMem => "GPU Memory",
            Tier::HostMem => "Host Memory",
            Tier::LocalSsd => "Local SSD",
            Tier::Pfs => "PFS",
        }
    }

    /// Whether the tier survives a node crash (only the PFS does).
    pub fn is_persistent(self) -> bool {
        matches!(self, Tier::Pfs)
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost model for one storage tier.
///
/// An I/O of `bytes` spread over `ntensors` objects costs
/// `latency + ntensors * per_tensor + bytes / bandwidth`, with bandwidth
/// degraded by concurrent load (see [`TierSpec::effective_bw`]). The
/// per-tensor term models the uncoordinated small-I/O metadata accesses the
/// paper identifies as the PFS bottleneck (§3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Which tier this spec describes.
    pub tier: Tier,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Fixed per-operation setup latency (file open, allocation, RPC).
    pub write_latency: Duration,
    /// Fixed per-operation read latency.
    pub read_latency: Duration,
    /// Metadata cost charged once per tensor written.
    pub per_tensor_write: Duration,
    /// Metadata cost charged once per tensor read.
    pub per_tensor_read: Duration,
    /// Usable capacity in bytes.
    pub capacity: u64,
}

impl TierSpec {
    /// Bandwidth under `load` concurrent streams (the tier's aggregate is
    /// shared fairly; a single stream keeps full bandwidth).
    #[inline]
    pub fn effective_bw(&self, bw: f64, load: usize) -> f64 {
        bw / load.max(1) as f64
    }

    /// Modeled duration of writing `bytes` across `ntensors` tensors with no
    /// concurrent load.
    pub fn write_time(&self, bytes: u64, ntensors: usize) -> Duration {
        self.write_time_loaded(bytes, ntensors, 1)
    }

    /// Modeled write duration under `load` concurrent streams.
    pub fn write_time_loaded(&self, bytes: u64, ntensors: usize, load: usize) -> Duration {
        let bw = self.effective_bw(self.write_bw, load);
        self.write_latency
            + self.per_tensor_write.mul_f64(ntensors as f64)
            + Duration::from_secs_f64(bytes as f64 / bw)
    }

    /// Modeled duration of reading `bytes` across `ntensors` tensors.
    pub fn read_time(&self, bytes: u64, ntensors: usize) -> Duration {
        self.read_time_loaded(bytes, ntensors, 1)
    }

    /// Modeled read duration under `load` concurrent streams.
    pub fn read_time_loaded(&self, bytes: u64, ntensors: usize, load: usize) -> Duration {
        let bw = self.effective_bw(self.read_bw, load);
        self.read_latency
            + self.per_tensor_read.mul_f64(ntensors as f64)
            + Duration::from_secs_f64(bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TierSpec {
        TierSpec {
            tier: Tier::Pfs,
            write_bw: 1.0e9,
            read_bw: 2.0e9,
            write_latency: Duration::from_millis(100),
            read_latency: Duration::from_millis(50),
            per_tensor_write: Duration::from_millis(3),
            per_tensor_read: Duration::from_millis(2),
            capacity: u64::MAX,
        }
    }

    #[test]
    fn tier_ordering_fastest_first() {
        assert!(Tier::GpuMem < Tier::HostMem);
        assert!(Tier::HostMem < Tier::LocalSsd);
        assert!(Tier::LocalSsd < Tier::Pfs);
    }

    #[test]
    fn only_pfs_is_persistent() {
        assert!(Tier::Pfs.is_persistent());
        assert!(!Tier::GpuMem.is_persistent());
        assert!(!Tier::HostMem.is_persistent());
        assert!(!Tier::LocalSsd.is_persistent());
    }

    #[test]
    fn write_time_components_add_up() {
        let s = spec();
        // 1 GB at 1 GB/s = 1 s payload + 0.1 s latency + 10 * 3 ms metadata.
        let t = s.write_time(1_000_000_000, 10);
        assert!((t.as_secs_f64() - 1.13).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn read_faster_than_write_here() {
        let s = spec();
        let w = s.write_time(1_000_000_000, 1);
        let r = s.read_time(1_000_000_000, 1);
        assert!(r < w);
    }

    #[test]
    fn contention_halves_bandwidth() {
        let s = spec();
        let t1 = s.write_time_loaded(1_000_000_000, 0, 1);
        let t2 = s.write_time_loaded(1_000_000_000, 0, 2);
        let payload1 = t1.as_secs_f64() - 0.1;
        let payload2 = t2.as_secs_f64() - 0.1;
        assert!((payload2 / payload1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_io_costs_only_fixed_overheads() {
        let s = spec();
        assert_eq!(s.write_time(0, 0), Duration::from_millis(100));
        assert_eq!(s.read_time(0, 0), Duration::from_millis(50));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Tier::GpuMem.to_string(), "GPU Memory");
        assert_eq!(Tier::Pfs.to_string(), "PFS");
    }
}
