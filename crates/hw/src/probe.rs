//! Bandwidth probing.
//!
//! The paper obtains `bw_write` / `bw_read` by "measuring the current I/O
//! bandwidth of the corresponding storage in the system" (§4.3) — the
//! predictor then derives the stall time `t_p = s_model / bw_write` and the
//! consumer load time `t_c = s_model / bw_read`. `BandwidthProbe` performs
//! that measurement against a simulated tier: it issues a calibration write
//! and read of a probe-sized payload and reports the observed effective
//! bandwidth (which reflects contention at probe time).

use crate::{StorageTier, Tier};
use std::sync::Arc;
use std::time::Duration;

/// Result of probing one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthProbe {
    /// Probed tier.
    pub tier: Tier,
    /// Observed write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Observed read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Payload size used for the probe.
    pub probe_bytes: u64,
}

impl BandwidthProbe {
    /// Probe `tier` with a payload of `probe_bytes` (clamped to ≥ 1 MiB so
    /// fixed latencies don't dominate the estimate).
    ///
    /// The probe object is removed afterwards.
    pub fn measure(tier: &StorageTier, probe_bytes: u64) -> Self {
        let probe_bytes = probe_bytes.max(1 << 20);
        let key = "__viper_bw_probe__";
        let payload = Arc::new(vec![0u8; probe_bytes as usize]);
        let wt = tier
            .write(key, payload, 1)
            .expect("bandwidth probe write failed: probe larger than tier capacity?");
        let (_, rt) = tier.read(key).expect("probe object vanished");
        tier.remove(key);
        BandwidthProbe {
            tier: tier.tier(),
            write_bw: effective_bw(probe_bytes, wt),
            read_bw: effective_bw(probe_bytes, rt),
            probe_bytes,
        }
    }

    /// Predicted stall time for checkpointing a model of `bytes` to this
    /// tier (`t_p` in the paper).
    pub fn stall_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.write_bw)
    }

    /// Predicted consumer load time for a model of `bytes` from this tier
    /// (`t_c` in the paper).
    pub fn load_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.read_bw)
    }
}

fn effective_bw(bytes: u64, dur: Duration) -> f64 {
    let secs = dur.as_secs_f64();
    if secs <= 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineProfile, SimClock, StorageTier};

    fn tier(t: Tier) -> StorageTier {
        let p = MachineProfile::polaris();
        StorageTier::new(*p.tier(t), SimClock::new())
    }

    #[test]
    fn probe_close_to_spec_for_large_payload() {
        let pfs = tier(Tier::Pfs);
        let probe = BandwidthProbe::measure(&pfs, 8 << 30);
        // With an 8 GiB probe the fixed costs are negligible.
        assert!(
            (probe.write_bw - 1.5e9).abs() / 1.5e9 < 0.05,
            "{}",
            probe.write_bw
        );
        assert!(
            (probe.read_bw - 1.55e9).abs() / 1.55e9 < 0.05,
            "{}",
            probe.read_bw
        );
    }

    #[test]
    fn probe_underestimates_bw_for_small_payload() {
        // Fixed latency dominates small probes — observed bw is far below spec.
        let pfs = tier(Tier::Pfs);
        let probe = BandwidthProbe::measure(&pfs, 1 << 20);
        assert!(probe.write_bw < 1.5e9 * 0.2);
    }

    #[test]
    fn probe_cleans_up() {
        let host = tier(Tier::HostMem);
        let before = host.object_count();
        BandwidthProbe::measure(&host, 1 << 20);
        assert_eq!(host.object_count(), before);
        assert_eq!(host.used_bytes(), 0);
    }

    #[test]
    fn stall_and_load_scale_linearly() {
        let host = tier(Tier::HostMem);
        let probe = BandwidthProbe::measure(&host, 1 << 28);
        let one = probe.stall_time(1 << 28);
        let two = probe.stall_time(1 << 29);
        assert!((two.as_secs_f64() / one.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!(probe.load_time(1 << 28) <= one); // reads at least as fast here
    }

    #[test]
    fn probes_rank_tiers_correctly() {
        let g = BandwidthProbe::measure(&tier(Tier::GpuMem), 1 << 30);
        let h = BandwidthProbe::measure(&tier(Tier::HostMem), 1 << 30);
        let p = BandwidthProbe::measure(&tier(Tier::Pfs), 1 << 30);
        assert!(g.write_bw > h.write_bw);
        assert!(h.write_bw > p.write_bw);
    }
}
