//! Machine profiles bundling calibrated tier and link characteristics.

use crate::{Tier, TierSpec};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Calibrated characteristics of a simulated machine.
///
/// The default [`MachineProfile::polaris`] profile is calibrated so the
/// end-to-end model-update paths reproduce the latencies the paper reports
/// on ALCF Polaris (Fig. 8): see `EXPERIMENTS.md` for the paper-vs-measured
/// comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Profile name (for reports).
    pub name: String,
    /// Per-tier cost models.
    pub tiers: Vec<TierSpec>,
    /// GPU-to-GPU RDMA (GPUDirect over Slingshot/NVLink) bandwidth, bytes/s.
    pub gpu_rdma_bw: f64,
    /// Host-to-host RDMA (InfiniBand verbs without GPUDirect) bandwidth, bytes/s.
    pub host_rdma_bw: f64,
    /// Fragmented device-to-host capture bandwidth: copying a model's many
    /// training tensors out of GPU memory over PCIe (blocks training on the
    /// host path), bytes/s. Far below peak PCIe because the tensors are
    /// scattered.
    pub d2h_capture_bw: f64,
    /// Contiguous host-to-device apply bandwidth (`cudaMemcpyAsync` of the
    /// received buffer into the live model), bytes/s.
    pub h2d_apply_bw: f64,
    /// Fragmented device-to-device capture bandwidth: snapshotting the live
    /// tensors inside GPU memory, bytes/s.
    pub gpu_capture_bw: f64,
    /// Extra device copy performed by the asynchronous GPU path when handing
    /// the snapshot to the background transfer thread, bytes/s.
    pub gpu_async_stage_bw: f64,
    /// Extra host memcpy performed by the asynchronous host path, bytes/s.
    pub host_async_stage_bw: f64,
    /// One-way network message latency (RDMA setup / rendezvous).
    pub net_latency: Duration,
    /// Publish-subscribe notification delivery latency (<1 ms per the paper).
    pub notify_latency: Duration,
    /// Model-repository polling interval floor used by baseline serving
    /// systems (≥1 ms per the paper's discussion of Triton).
    pub poll_interval_floor: Duration,
}

impl MachineProfile {
    /// A Polaris-like node: A100 HBM, DDR4, Slingshot-10, Lustre.
    pub fn polaris() -> Self {
        MachineProfile {
            name: "polaris".into(),
            tiers: vec![
                TierSpec {
                    tier: Tier::GpuMem,
                    write_bw: 1.2e12,
                    read_bw: 1.3e12,
                    write_latency: Duration::from_micros(10),
                    read_latency: Duration::from_micros(10),
                    per_tensor_write: Duration::from_micros(5),
                    per_tensor_read: Duration::from_micros(5),
                    capacity: 40 * (1 << 30),
                },
                TierSpec {
                    tier: Tier::HostMem,
                    write_bw: 2.0e10,
                    read_bw: 2.4e10,
                    write_latency: Duration::from_micros(5),
                    read_latency: Duration::from_micros(5),
                    per_tensor_write: Duration::from_micros(2),
                    per_tensor_read: Duration::from_micros(2),
                    capacity: 512 * (1 << 30),
                },
                TierSpec {
                    tier: Tier::LocalSsd,
                    write_bw: 2.0e9,
                    read_bw: 3.5e9,
                    write_latency: Duration::from_micros(80),
                    read_latency: Duration::from_micros(60),
                    per_tensor_write: Duration::from_micros(30),
                    per_tensor_read: Duration::from_micros(20),
                    capacity: 3 * (1u64 << 40),
                },
                TierSpec {
                    tier: Tier::Pfs,
                    // Single-client effective Lustre bandwidth under the
                    // uncoordinated small-I/O pattern of model checkpoints —
                    // far below the 650 GB/s aggregate.
                    write_bw: 1.5e9,
                    read_bw: 1.55e9,
                    write_latency: Duration::from_millis(120),
                    read_latency: Duration::from_millis(120),
                    per_tensor_write: Duration::from_micros(2_500),
                    per_tensor_read: Duration::from_micros(2_500),
                    capacity: u64::MAX,
                },
            ],
            gpu_rdma_bw: 8.5e9,
            host_rdma_bw: 9.4e9,
            d2h_capture_bw: 3.4e9,
            h2d_apply_bw: 1.2e10,
            gpu_capture_bw: 7.5e10,
            gpu_async_stage_bw: 2.0e10,
            host_async_stage_bw: 8.0e10,
            net_latency: Duration::from_micros(20),
            notify_latency: Duration::from_micros(300),
            poll_interval_floor: Duration::from_millis(1),
        }
    }

    /// A deliberately slow "edge" profile (useful in tests and the PtychoNN
    /// edge example): consumer-grade SSD, 10 GbE, no GPUDirect.
    pub fn edge() -> Self {
        let mut p = Self::polaris();
        p.name = "edge".into();
        p.gpu_rdma_bw = 1.0e9;
        p.host_rdma_bw = 1.0e9;
        p.d2h_capture_bw = 2.0e9;
        p.h2d_apply_bw = 6.0e9;
        for t in &mut p.tiers {
            if t.tier == Tier::Pfs {
                t.write_bw = 2.0e8;
                t.read_bw = 2.5e8;
            }
        }
        p
    }

    /// Cost model for a tier. Panics if the profile lacks the tier (all
    /// built-in profiles define all four).
    pub fn tier(&self, tier: Tier) -> &TierSpec {
        self.tiers
            .iter()
            .find(|t| t.tier == tier)
            .unwrap_or_else(|| panic!("profile {} has no spec for {tier}", self.name))
    }

    /// Modeled duration of a point-to-point transfer of `bytes` over the
    /// GPU-direct path.
    pub fn gpu_transfer_time(&self, bytes: u64) -> Duration {
        self.net_latency + Duration::from_secs_f64(bytes as f64 / self.gpu_rdma_bw)
    }

    /// Modeled duration of a host-to-host RDMA transfer of `bytes`.
    pub fn host_transfer_time(&self, bytes: u64) -> Duration {
        self.net_latency + Duration::from_secs_f64(bytes as f64 / self.host_rdma_bw)
    }

    /// Modeled duration of capturing `bytes` of scattered tensors from GPU
    /// memory into host memory.
    pub fn d2h_capture_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.d2h_capture_bw)
    }

    /// Modeled duration of applying a contiguous `bytes` buffer from host
    /// memory into the live GPU model.
    pub fn h2d_apply_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.h2d_apply_bw)
    }

    /// Modeled duration of snapshotting `bytes` of scattered tensors inside
    /// GPU memory.
    pub fn gpu_capture_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.gpu_capture_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polaris_defines_all_tiers() {
        let p = MachineProfile::polaris();
        for t in Tier::ALL {
            assert_eq!(p.tier(t).tier, t);
        }
    }

    #[test]
    fn tier_speed_ordering_holds() {
        let p = MachineProfile::polaris();
        assert!(p.tier(Tier::GpuMem).write_bw > p.tier(Tier::HostMem).write_bw);
        assert!(p.tier(Tier::HostMem).write_bw > p.tier(Tier::LocalSsd).write_bw);
        assert!(p.tier(Tier::LocalSsd).write_bw > p.tier(Tier::Pfs).write_bw);
    }

    #[test]
    fn gpu_path_beats_host_path_beats_pfs() {
        let p = MachineProfile::polaris();
        let bytes = 4_700_000_000u64; // TC1
        let gpu = p.gpu_transfer_time(bytes);
        let host =
            p.d2h_capture_time(bytes) + p.host_transfer_time(bytes) + p.h2d_apply_time(bytes);
        let pfs = p.tier(Tier::Pfs).write_time(bytes, 20) + p.tier(Tier::Pfs).read_time(bytes, 20);
        assert!(gpu < host, "{gpu:?} !< {host:?}");
        assert!(host < pfs, "{host:?} !< {pfs:?}");
    }

    #[test]
    fn notify_beats_polling_floor() {
        let p = MachineProfile::polaris();
        assert!(p.notify_latency < p.poll_interval_floor);
    }

    #[test]
    fn edge_profile_is_slower() {
        let e = MachineProfile::edge();
        let p = MachineProfile::polaris();
        assert!(e.gpu_transfer_time(1 << 30) > p.gpu_transfer_time(1 << 30));
        assert!(e.tier(Tier::Pfs).write_bw < p.tier(Tier::Pfs).write_bw);
    }

    #[test]
    fn profile_is_serializable() {
        fn assert_serialize<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serialize::<MachineProfile>();
    }
}
