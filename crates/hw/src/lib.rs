//! # viper-hw
//!
//! Simulated multi-tier HPC storage hardware for the Viper reproduction.
//!
//! The paper evaluates Viper on ALCF Polaris: A100 GPUs (HBM + NVLink),
//! 512 GB DDR4 host memory, a Slingshot-10 interconnect, and a Lustre PFS.
//! None of that hardware is available here, so this crate models each tier
//! with a calibrated cost model — fixed per-operation latency, per-tensor
//! metadata overhead, and bandwidth with a contention term — and keeps a
//! *virtual clock* so experiments at paper scale (multi-GB checkpoints)
//! run in milliseconds of wall time.
//!
//! Calibration targets are the paper's own measurements (Fig. 8): a 4.7 GB
//! TC1 checkpoint takes ≈8 s end-to-end through the PFS baseline, ≈2.3 s
//! host-to-host, and ≈0.6-0.9 s GPU-to-GPU.
//!
//! ## Example
//!
//! ```
//! use viper_hw::{MachineProfile, Tier};
//!
//! let polaris = MachineProfile::polaris();
//! let spec = polaris.tier(Tier::GpuMem);
//! // Writing 4.7 GB into GPU memory is fast.
//! let t = spec.write_time(4_700_000_000, 1);
//! assert!(t.as_secs_f64() < 0.1);
//! ```

#![warn(missing_docs)]

mod clock;
mod probe;
mod profile;
mod storage;
mod tier;
mod xfer;

pub use clock::{SimClock, SimInstant};
pub use probe::BandwidthProbe;
pub use profile::MachineProfile;
pub use storage::{StorageError, StorageTier, StoredObject};
pub use tier::{Tier, TierSpec};
pub use xfer::{
    apply_time, capture_time, chunk_layout, delivery_time, pipeline_costs, pipeline_time,
    price_update, retry_backoff, stage_time, CaptureMode, Route, TransferStrategy, UpdateCosts,
};
