//! Transfer-strategy cost composition.
//!
//! One model update = capture on the producer + delivery to the consumer +
//! apply into the live model (§4.4). This module composes those phases for
//! each of the paper's strategies so that the framework runtime, the
//! discrete-event simulator, and the benchmarks all price updates
//! identically:
//!
//! | strategy          | producer stall (blocks training)       | post-stall delivery        |
//! |-------------------|------------------------------------------|----------------------------|
//! | GPU sync          | GPU capture + GPU-RDMA send              | apply (D2D)                |
//! | GPU async         | GPU capture                              | stage copy + send + apply  |
//! | Host sync         | D2H capture + IB send                    | apply (H2D + tensor update)|
//! | Host async        | D2H capture                              | stage copy + send + apply  |
//! | PFS (either fmt)  | PFS write                                | PFS read + apply           |
//!
//! The *update latency* the paper measures end-to-end (Fig. 8) is
//! `stall + post + notify`; the *training overhead* per update (Fig. 9 /
//! Table 1) is just `stall`.

use crate::{MachineProfile, Tier};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Synchronous or asynchronous capture-and-send on the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaptureMode {
    /// Training blocks until the model has left the producer.
    Sync,
    /// Training blocks only for the snapshot; a background thread delivers.
    Async,
}

/// Which route a model update takes from producer to consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Route {
    /// Direct GPU-to-GPU memory (GPUDirect RDMA / NVLink).
    GpuToGpu,
    /// Host-to-host memory over InfiniBand, staging through DRAM.
    HostToHost,
    /// Staging through the parallel file system (the traditional path).
    PfsStaging,
}

impl Route {
    /// The producer-side tier this route caches the checkpoint on.
    pub fn staging_tier(self) -> Tier {
        match self {
            Route::GpuToGpu => Tier::GpuMem,
            Route::HostToHost => Tier::HostMem,
            Route::PfsStaging => Tier::Pfs,
        }
    }
}

/// A complete transfer strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferStrategy {
    /// Route taken by the checkpoint.
    pub route: Route,
    /// Capture mode on the producer.
    pub mode: CaptureMode,
}

impl TransferStrategy {
    /// All six strategies of Fig. 8, in the figure's order (PFS has no
    /// sync/async distinction there; it appears once).
    pub fn fig8_lineup() -> [TransferStrategy; 5] {
        [
            TransferStrategy {
                route: Route::PfsStaging,
                mode: CaptureMode::Sync,
            },
            TransferStrategy {
                route: Route::HostToHost,
                mode: CaptureMode::Sync,
            },
            TransferStrategy {
                route: Route::HostToHost,
                mode: CaptureMode::Async,
            },
            TransferStrategy {
                route: Route::GpuToGpu,
                mode: CaptureMode::Sync,
            },
            TransferStrategy {
                route: Route::GpuToGpu,
                mode: CaptureMode::Async,
            },
        ]
    }

    /// Short label matching the paper's figures.
    pub fn label(&self) -> String {
        match (self.route, self.mode) {
            (Route::PfsStaging, _) => "Viper-PFS".into(),
            (Route::HostToHost, CaptureMode::Sync) => "Viper-Sync (Host Memory)".into(),
            (Route::HostToHost, CaptureMode::Async) => "Viper-Async (Host Memory)".into(),
            (Route::GpuToGpu, CaptureMode::Sync) => "Viper-Sync (GPU Memory)".into(),
            (Route::GpuToGpu, CaptureMode::Async) => "Viper-Async (GPU Memory)".into(),
        }
    }
}

/// The priced phases of one model update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateCosts {
    /// Time the producer's training loop is blocked.
    pub stall: Duration,
    /// Remaining delivery time after the stall (overlaps training).
    pub post_stall: Duration,
    /// Consumer-side apply time (included in `post_stall`; broken out for
    /// reporting).
    pub apply: Duration,
    /// Notification latency until the consumer learns of the update.
    pub notify: Duration,
}

impl UpdateCosts {
    /// End-to-end model update latency (checkpoint start → consumer serving
    /// the new model) — the metric of Fig. 8.
    pub fn update_latency(&self) -> Duration {
        self.stall + self.post_stall + self.notify
    }
}

/// Producer-side capture time: the snapshot copy out of the live training
/// tensors. For the PFS route this is the (blocking) PFS write itself;
/// `metadata_factor` scales its per-tensor metadata cost.
pub fn capture_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> Duration {
    match route {
        Route::GpuToGpu => {
            profile.gpu_capture_time(bytes)
                + profile
                    .tier(Tier::GpuMem)
                    .per_tensor_write
                    .mul_f64(ntensors as f64)
        }
        Route::HostToHost => {
            profile.d2h_capture_time(bytes)
                + profile
                    .tier(Tier::HostMem)
                    .per_tensor_write
                    .mul_f64(ntensors as f64)
        }
        Route::PfsStaging => {
            let meta_ops = (ntensors as f64 * metadata_factor).ceil() as usize;
            profile.tier(Tier::Pfs).write_time(bytes, meta_ops)
        }
    }
}

/// Extra staging copy performed by the asynchronous producer before handing
/// the snapshot to the background delivery thread. Zero for the PFS route
/// (its write is always blocking).
pub fn stage_time(profile: &MachineProfile, route: Route, bytes: u64) -> Duration {
    match route {
        Route::GpuToGpu => Duration::from_secs_f64(bytes as f64 / profile.gpu_async_stage_bw),
        Route::HostToHost => Duration::from_secs_f64(bytes as f64 / profile.host_async_stage_bw),
        Route::PfsStaging => Duration::ZERO,
    }
}

/// Wire/read time for moving the staged checkpoint to the consumer node.
/// For memory routes this is the RDMA send; for the PFS route it is the
/// consumer's PFS read.
pub fn delivery_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> Duration {
    match route {
        Route::GpuToGpu => profile.gpu_transfer_time(bytes),
        Route::HostToHost => profile.host_transfer_time(bytes),
        Route::PfsStaging => {
            let meta_ops = (ntensors as f64 * metadata_factor).ceil() as usize;
            profile.tier(Tier::Pfs).read_time(bytes, meta_ops)
        }
    }
}

/// Consumer-side apply time: copying the received buffer into the live
/// model's tensors.
pub fn apply_time(profile: &MachineProfile, route: Route, bytes: u64, ntensors: usize) -> Duration {
    match route {
        Route::GpuToGpu => {
            profile.gpu_capture_time(bytes)
                + profile
                    .tier(Tier::GpuMem)
                    .per_tensor_read
                    .mul_f64(ntensors as f64)
        }
        Route::HostToHost | Route::PfsStaging => {
            profile.h2d_apply_time(bytes) + Duration::from_millis(1).mul_f64(ntensors as f64)
        }
    }
}

/// Price one model update of `bytes` across `ntensors` tensors under
/// `strategy`. `metadata_factor` scales the per-tensor metadata cost of the
/// serialization format (1.0 for the lean Viper format, >1 for h5py-style
/// formats) and only affects the PFS route, where metadata operations hit
/// the file system.
pub fn price_update(
    profile: &MachineProfile,
    strategy: TransferStrategy,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> UpdateCosts {
    let route = strategy.route;
    let notify = profile.notify_latency;
    let capture = capture_time(profile, route, bytes, ntensors, metadata_factor);
    let delivery = delivery_time(profile, route, bytes, ntensors, metadata_factor);
    let apply = apply_time(profile, route, bytes, ntensors);
    match route {
        // The PFS write blocks training regardless of mode: the snapshot
        // must be durably staged before training mutates the tensors again.
        Route::PfsStaging => UpdateCosts {
            stall: capture,
            post_stall: delivery + apply,
            apply,
            notify,
        },
        Route::GpuToGpu | Route::HostToHost => match strategy.mode {
            CaptureMode::Sync => UpdateCosts {
                stall: capture + delivery,
                post_stall: apply,
                apply,
                notify,
            },
            CaptureMode::Async => {
                let stage = stage_time(profile, route, bytes);
                UpdateCosts {
                    stall: capture,
                    post_stall: stage + delivery + apply,
                    apply,
                    notify,
                }
            }
        },
    }
}

/// Virtual-time backoff before retransmission round `attempt` (1-based):
/// exponential growth from `base` (`base`, `2·base`, `4·base`, …), capped at
/// `cap`. This is the reliability layer's cost model — backoff is charged to
/// the virtual clock like any other hardware duration, so lost chunks show
/// up as measurable update-latency increases instead of free retries.
pub fn retry_backoff(base: Duration, attempt: u32, cap: Duration) -> Duration {
    if base.is_zero() || attempt == 0 {
        return Duration::ZERO;
    }
    // 2^(attempt-1), saturating well past any meaningful cap.
    let factor = 1u32 << (attempt - 1).min(30);
    base.saturating_mul(factor).min(cap)
}

/// One stage of the chunked transfer pipeline: a bandwidth, a fixed cost
/// paid per chunk, and a one-time cost paid once per flow (per-tensor
/// metadata, charged with the first chunk).
#[derive(Debug, Clone, Copy)]
struct Stage {
    bw: f64,
    per_chunk: Duration,
    once: Duration,
}

impl Stage {
    fn time(&self, chunk: u64, first: bool) -> Duration {
        let once = if first { self.once } else { Duration::ZERO };
        self.per_chunk + once + Duration::from_secs_f64(chunk as f64 / self.bw)
    }
}

/// Split `bytes` into chunk sizes of at most `chunk_bytes` (last chunk takes
/// the remainder; zero `chunk_bytes` means one chunk). Mirrors the layout
/// the fabric's chunked send uses.
pub fn chunk_layout(bytes: u64, chunk_bytes: u64) -> Vec<u64> {
    if bytes == 0 || chunk_bytes == 0 || chunk_bytes >= bytes {
        return vec![bytes];
    }
    let mut sizes = vec![chunk_bytes; (bytes / chunk_bytes) as usize];
    if !bytes.is_multiple_of(chunk_bytes) {
        sizes.push(bytes % chunk_bytes);
    }
    sizes
}

/// The pipeline's stage lineup for a strategy, plus how many leading stages
/// run on the producer (and therefore bound the training stall).
fn pipeline_stages(
    profile: &MachineProfile,
    strategy: TransferStrategy,
    ntensors: usize,
    metadata_factor: f64,
) -> (Vec<Stage>, usize) {
    let n = ntensors as f64;
    let gpu = profile.tier(Tier::GpuMem);
    let host = profile.tier(Tier::HostMem);
    let pfs = profile.tier(Tier::Pfs);
    match strategy.route {
        Route::GpuToGpu | Route::HostToHost => {
            let (capture_bw, stage_bw, wire_bw, apply_bw, tier) =
                if strategy.route == Route::GpuToGpu {
                    (
                        profile.gpu_capture_bw,
                        profile.gpu_async_stage_bw,
                        profile.gpu_rdma_bw,
                        profile.gpu_capture_bw,
                        gpu,
                    )
                } else {
                    (
                        profile.d2h_capture_bw,
                        profile.host_async_stage_bw,
                        profile.host_rdma_bw,
                        profile.h2d_apply_bw,
                        host,
                    )
                };
            let apply_once = match strategy.route {
                Route::GpuToGpu => tier.per_tensor_read.mul_f64(n),
                _ => Duration::from_millis(1).mul_f64(n),
            };
            let mut stages = vec![Stage {
                bw: capture_bw,
                per_chunk: tier.write_latency,
                once: tier.per_tensor_write.mul_f64(n),
            }];
            if strategy.mode == CaptureMode::Async {
                stages.push(Stage {
                    bw: stage_bw,
                    per_chunk: tier.write_latency,
                    once: Duration::ZERO,
                });
            }
            stages.push(Stage {
                bw: wire_bw,
                per_chunk: profile.net_latency,
                once: Duration::ZERO,
            });
            stages.push(Stage {
                bw: apply_bw,
                per_chunk: tier.read_latency,
                once: apply_once,
            });
            // Sync: training resumes once the last chunk clears the wire.
            // Async: only the capture blocks; staging onward is background.
            let producer_stages = if strategy.mode == CaptureMode::Sync {
                2
            } else {
                1
            };
            (stages, producer_stages)
        }
        Route::PfsStaging => {
            let meta = pfs.per_tensor_write.mul_f64((n * metadata_factor).ceil());
            let meta_read = pfs.per_tensor_read.mul_f64((n * metadata_factor).ceil());
            let stages = vec![
                Stage {
                    bw: pfs.write_bw,
                    per_chunk: pfs.write_latency,
                    once: meta,
                },
                Stage {
                    bw: pfs.read_bw,
                    per_chunk: pfs.read_latency,
                    once: meta_read,
                },
                Stage {
                    bw: profile.h2d_apply_bw,
                    per_chunk: host.read_latency,
                    once: Duration::from_millis(1).mul_f64(n),
                },
            ];
            // The PFS write blocks training regardless of mode.
            (stages, 1)
        }
    }
}

/// Completion time of each stage after pushing every chunk through the
/// pipeline: chunk `i` enters stage `s` once both stage `s-1` finished that
/// chunk and stage `s` finished chunk `i-1` (stages hold one chunk at a
/// time — same-link serialization).
fn stage_completions(chunks: &[u64], stages: &[Stage]) -> Vec<Duration> {
    let mut done = vec![Duration::ZERO; stages.len()];
    for (ci, &chunk) in chunks.iter().enumerate() {
        let mut upstream = Duration::ZERO;
        for (s, stage) in stages.iter().enumerate() {
            let start = upstream.max(done[s]);
            done[s] = start + stage.time(chunk, ci == 0);
            upstream = done[s];
        }
    }
    done
}

/// Overlapped makespan of one chunked model update (capture → wire → apply
/// with synchronous capture): the fill of the first chunk, steady-state at
/// the bottleneck stage, and the drain of the last chunk. Per-chunk fixed
/// costs (link latency, I/O setup) penalize overly small chunks; a single
/// chunk degenerates to the monolithic `capture + delivery + apply` sum
/// (plus those fixed costs).
pub fn pipeline_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
    chunk_bytes: u64,
) -> Duration {
    let strategy = TransferStrategy {
        route,
        mode: CaptureMode::Sync,
    };
    let (stages, _) = pipeline_stages(profile, strategy, ntensors, 1.0);
    *stage_completions(&chunk_layout(bytes, chunk_bytes), &stages)
        .last()
        .expect("pipeline has stages")
}

/// Price one *chunked* model update, the pipelined counterpart of
/// [`price_update`]: `stall` is when the last chunk clears the producer-side
/// stages (capture alone for async, capture + wire for sync, the PFS write
/// for the PFS route), and `post_stall` is the remaining drain until the
/// last chunk is applied. `apply` reports the non-overlapped apply tail.
pub fn pipeline_costs(
    profile: &MachineProfile,
    strategy: TransferStrategy,
    bytes: u64,
    ntensors: usize,
    chunk_bytes: u64,
    metadata_factor: f64,
) -> UpdateCosts {
    let (stages, producer_stages) = pipeline_stages(profile, strategy, ntensors, metadata_factor);
    let done = stage_completions(&chunk_layout(bytes, chunk_bytes), &stages);
    let total = *done.last().expect("pipeline has stages");
    let stall = done[producer_stages - 1];
    let apply = total.saturating_sub(done[done.len() - 2]);
    UpdateCosts {
        stall,
        post_stall: total.saturating_sub(stall),
        apply,
        notify: profile.notify_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC1: u64 = 4_700_000_000;
    const TC1_TENSORS: usize = 20;

    fn costs(route: Route, mode: CaptureMode) -> UpdateCosts {
        price_update(
            &MachineProfile::polaris(),
            TransferStrategy { route, mode },
            TC1,
            TC1_TENSORS,
            1.0,
        )
    }

    #[test]
    fn gpu_sync_latency_near_paper() {
        let c = costs(Route::GpuToGpu, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 0.626 s.
        assert!((lat - 0.626).abs() / 0.626 < 0.15, "latency {lat}");
    }

    #[test]
    fn gpu_async_latency_near_paper() {
        let c = costs(Route::GpuToGpu, CaptureMode::Async);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 0.856 s.
        assert!((lat - 0.856).abs() / 0.856 < 0.15, "latency {lat}");
    }

    #[test]
    fn host_sync_latency_near_paper() {
        let c = costs(Route::HostToHost, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 2.264 s.
        assert!((lat - 2.264).abs() / 2.264 < 0.15, "latency {lat}");
    }

    #[test]
    fn pfs_latency_near_paper() {
        let c = costs(Route::PfsStaging, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper (Viper-PFS): 6.977 s.
        assert!((lat - 6.977).abs() / 6.977 < 0.15, "latency {lat}");
    }

    #[test]
    fn async_stalls_less_but_lasts_longer() {
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let sync = costs(route, CaptureMode::Sync);
            let async_ = costs(route, CaptureMode::Async);
            assert!(async_.stall < sync.stall, "{route:?}");
            assert!(async_.update_latency() > sync.update_latency(), "{route:?}");
        }
    }

    #[test]
    fn gpu_async_stall_matches_fig9() {
        // Fig. 9: 16 GPU-route checkpoints cost ≈1 s of training overhead.
        let c = costs(Route::GpuToGpu, CaptureMode::Async);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 1.0).abs() < 0.5, "16 ckpts = {total} s");
    }

    #[test]
    fn host_stall_matches_fig9() {
        // Fig. 9: 16 host-route checkpoints ≈ 22 s of training overhead.
        let c = costs(Route::HostToHost, CaptureMode::Async);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 22.0).abs() / 22.0 < 0.15, "16 ckpts = {total} s");
    }

    #[test]
    fn pfs_stall_matches_fig9() {
        // Fig. 9: 16 PFS checkpoints ≈ 60 s of training overhead.
        let c = costs(Route::PfsStaging, CaptureMode::Sync);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 60.0).abs() / 60.0 < 0.20, "16 ckpts = {total} s");
    }

    #[test]
    fn strategy_ordering_matches_paper() {
        let gpu = costs(Route::GpuToGpu, CaptureMode::Sync).update_latency();
        let host = costs(Route::HostToHost, CaptureMode::Sync).update_latency();
        let pfs = costs(Route::PfsStaging, CaptureMode::Sync).update_latency();
        assert!(gpu < host && host < pfs);
    }

    #[test]
    fn metadata_factor_only_hits_pfs() {
        let p = MachineProfile::polaris();
        let s_gpu = TransferStrategy {
            route: Route::GpuToGpu,
            mode: CaptureMode::Sync,
        };
        let s_pfs = TransferStrategy {
            route: Route::PfsStaging,
            mode: CaptureMode::Sync,
        };
        let g1 = price_update(&p, s_gpu, TC1, TC1_TENSORS, 1.0);
        let g4 = price_update(&p, s_gpu, TC1, TC1_TENSORS, 4.0);
        assert_eq!(g1, g4);
        let p1 = price_update(&p, s_pfs, TC1, TC1_TENSORS, 1.0);
        let p4 = price_update(&p, s_pfs, TC1, TC1_TENSORS, 4.0);
        assert!(p4.update_latency() > p1.update_latency());
    }

    #[test]
    fn labels_and_lineup() {
        let lineup = TransferStrategy::fig8_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0].label(), "Viper-PFS");
        assert_eq!(lineup[4].label(), "Viper-Async (GPU Memory)");
    }

    #[test]
    fn staging_tiers() {
        assert_eq!(Route::GpuToGpu.staging_tier(), Tier::GpuMem);
        assert_eq!(Route::HostToHost.staging_tier(), Tier::HostMem);
        assert_eq!(Route::PfsStaging.staging_tier(), Tier::Pfs);
    }

    /// Monolithic capture → delivery → apply sum for comparison.
    fn monolithic(route: Route) -> f64 {
        let p = MachineProfile::polaris();
        (capture_time(&p, route, TC1, TC1_TENSORS, 1.0)
            + delivery_time(&p, route, TC1, TC1_TENSORS, 1.0)
            + apply_time(&p, route, TC1, TC1_TENSORS))
        .as_secs_f64()
    }

    #[test]
    fn chunk_layout_covers_payload() {
        assert_eq!(chunk_layout(10, 3), vec![3, 3, 3, 1]);
        assert_eq!(chunk_layout(9, 3), vec![3, 3, 3]);
        assert_eq!(chunk_layout(2, 3), vec![2]);
        assert_eq!(chunk_layout(5, 0), vec![5]);
        assert_eq!(chunk_layout(0, 64), vec![0]);
    }

    #[test]
    fn single_chunk_matches_monolithic_within_fixed_costs() {
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost, Route::PfsStaging] {
            let pipe = pipeline_time(&p, route, TC1, TC1_TENSORS, TC1).as_secs_f64();
            let mono = monolithic(route);
            // The only differences are per-chunk fixed costs (tier setup
            // latencies, microseconds against seconds of payload time).
            let rel = (pipe - mono).abs() / mono;
            assert!(
                rel < 0.01,
                "{route:?}: pipelined {pipe} vs monolithic {mono}"
            );
        }
    }

    #[test]
    fn four_chunks_strictly_beat_monolithic_on_memory_routes() {
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let pipe = pipeline_time(&p, route, TC1, TC1_TENSORS, TC1 / 4).as_secs_f64();
            let mono = monolithic(route);
            assert!(
                pipe < mono,
                "{route:?}: pipelined {pipe} !< monolithic {mono}"
            );
        }
    }

    #[test]
    fn chunked_pfs_overlaps_write_and_read() {
        let p = MachineProfile::polaris();
        let pipe = pipeline_time(&p, Route::PfsStaging, TC1, TC1_TENSORS, TC1 / 8).as_secs_f64();
        assert!(pipe < monolithic(Route::PfsStaging));
    }

    #[test]
    fn pipelined_route_ordering_preserved() {
        let p = MachineProfile::polaris();
        let chunk = 64 * 1024 * 1024;
        let gpu = pipeline_time(&p, Route::GpuToGpu, TC1, TC1_TENSORS, chunk);
        let host = pipeline_time(&p, Route::HostToHost, TC1, TC1_TENSORS, chunk);
        let pfs = pipeline_time(&p, Route::PfsStaging, TC1, TC1_TENSORS, chunk);
        assert!(gpu < host, "{gpu:?} !< {host:?}");
        assert!(host < pfs, "{host:?} !< {pfs:?}");
    }

    #[test]
    fn tiny_chunks_pay_their_fixed_costs() {
        // Per-chunk costs (net latency, I/O setup) dominate at small chunk
        // sizes: 64 KiB chunks must be slower than 64 MiB chunks.
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let tiny = pipeline_time(&p, route, TC1, TC1_TENSORS, 64 * 1024);
            let good = pipeline_time(&p, route, TC1, TC1_TENSORS, 64 * 1024 * 1024);
            assert!(tiny > good, "{route:?}: {tiny:?} !> {good:?}");
        }
    }

    #[test]
    fn pipelined_sync_stall_below_monolithic_stall() {
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let strategy = TransferStrategy {
                route,
                mode: CaptureMode::Sync,
            };
            let mono = price_update(&p, strategy, TC1, TC1_TENSORS, 1.0).stall;
            let pipe = pipeline_costs(&p, strategy, TC1, TC1_TENSORS, TC1 / 8, 1.0).stall;
            assert!(pipe < mono, "{route:?}: {pipe:?} !< {mono:?}");
        }
    }

    #[test]
    fn pipelined_async_stall_is_capture_bound() {
        let p = MachineProfile::polaris();
        let strategy = TransferStrategy {
            route: Route::GpuToGpu,
            mode: CaptureMode::Async,
        };
        let pipe = pipeline_costs(&p, strategy, TC1, TC1_TENSORS, TC1 / 8, 1.0);
        let capture = capture_time(&p, Route::GpuToGpu, TC1, TC1_TENSORS, 1.0);
        // Async blocks only for the capture stage (within per-chunk costs).
        let rel = (pipe.stall.as_secs_f64() - capture.as_secs_f64()) / capture.as_secs_f64();
        assert!(
            rel.abs() < 0.01,
            "stall {:?} vs capture {capture:?}",
            pipe.stall
        );
        assert!(pipe.post_stall > Duration::ZERO);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let base = Duration::from_micros(10);
        let cap = Duration::from_micros(75);
        assert_eq!(retry_backoff(base, 0, cap), Duration::ZERO);
        assert_eq!(retry_backoff(Duration::ZERO, 5, cap), Duration::ZERO);
        assert_eq!(retry_backoff(base, 1, cap), Duration::from_micros(10));
        assert_eq!(retry_backoff(base, 2, cap), Duration::from_micros(20));
        assert_eq!(retry_backoff(base, 3, cap), Duration::from_micros(40));
        assert_eq!(retry_backoff(base, 4, cap), cap);
        // Huge attempt counts neither overflow nor exceed the cap.
        assert_eq!(retry_backoff(base, u32::MAX, cap), cap);
    }

    #[test]
    fn pipeline_latency_between_bottleneck_and_sum() {
        // Sanity bounds: the makespan cannot beat the slowest stage's total
        // work, and cannot exceed the unpipelined sum of all stages.
        let p = MachineProfile::polaris();
        for route in [Route::GpuToGpu, Route::HostToHost, Route::PfsStaging] {
            let chunk = 256 * 1024 * 1024;
            let pipe = pipeline_time(&p, route, TC1, TC1_TENSORS, chunk).as_secs_f64();
            let wire = delivery_time(&p, route, TC1, TC1_TENSORS, 1.0).as_secs_f64();
            assert!(pipe >= wire, "{route:?}: {pipe} < bottleneck {wire}");
            assert!(
                pipe <= monolithic(route) * 1.01,
                "{route:?}: {pipe} exceeds sum"
            );
        }
    }
}
