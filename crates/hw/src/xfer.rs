//! Transfer-strategy cost composition.
//!
//! One model update = capture on the producer + delivery to the consumer +
//! apply into the live model (§4.4). This module composes those phases for
//! each of the paper's strategies so that the framework runtime, the
//! discrete-event simulator, and the benchmarks all price updates
//! identically:
//!
//! | strategy          | producer stall (blocks training)       | post-stall delivery        |
//! |-------------------|------------------------------------------|----------------------------|
//! | GPU sync          | GPU capture + GPU-RDMA send              | apply (D2D)                |
//! | GPU async         | GPU capture                              | stage copy + send + apply  |
//! | Host sync         | D2H capture + IB send                    | apply (H2D + tensor update)|
//! | Host async        | D2H capture                              | stage copy + send + apply  |
//! | PFS (either fmt)  | PFS write                                | PFS read + apply           |
//!
//! The *update latency* the paper measures end-to-end (Fig. 8) is
//! `stall + post + notify`; the *training overhead* per update (Fig. 9 /
//! Table 1) is just `stall`.

use crate::{MachineProfile, Tier};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Synchronous or asynchronous capture-and-send on the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaptureMode {
    /// Training blocks until the model has left the producer.
    Sync,
    /// Training blocks only for the snapshot; a background thread delivers.
    Async,
}

/// Which route a model update takes from producer to consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Route {
    /// Direct GPU-to-GPU memory (GPUDirect RDMA / NVLink).
    GpuToGpu,
    /// Host-to-host memory over InfiniBand, staging through DRAM.
    HostToHost,
    /// Staging through the parallel file system (the traditional path).
    PfsStaging,
}

impl Route {
    /// The producer-side tier this route caches the checkpoint on.
    pub fn staging_tier(self) -> Tier {
        match self {
            Route::GpuToGpu => Tier::GpuMem,
            Route::HostToHost => Tier::HostMem,
            Route::PfsStaging => Tier::Pfs,
        }
    }
}

/// A complete transfer strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferStrategy {
    /// Route taken by the checkpoint.
    pub route: Route,
    /// Capture mode on the producer.
    pub mode: CaptureMode,
}

impl TransferStrategy {
    /// All six strategies of Fig. 8, in the figure's order (PFS has no
    /// sync/async distinction there; it appears once).
    pub fn fig8_lineup() -> [TransferStrategy; 5] {
        [
            TransferStrategy { route: Route::PfsStaging, mode: CaptureMode::Sync },
            TransferStrategy { route: Route::HostToHost, mode: CaptureMode::Sync },
            TransferStrategy { route: Route::HostToHost, mode: CaptureMode::Async },
            TransferStrategy { route: Route::GpuToGpu, mode: CaptureMode::Sync },
            TransferStrategy { route: Route::GpuToGpu, mode: CaptureMode::Async },
        ]
    }

    /// Short label matching the paper's figures.
    pub fn label(&self) -> String {
        match (self.route, self.mode) {
            (Route::PfsStaging, _) => "Viper-PFS".into(),
            (Route::HostToHost, CaptureMode::Sync) => "Viper-Sync (Host Memory)".into(),
            (Route::HostToHost, CaptureMode::Async) => "Viper-Async (Host Memory)".into(),
            (Route::GpuToGpu, CaptureMode::Sync) => "Viper-Sync (GPU Memory)".into(),
            (Route::GpuToGpu, CaptureMode::Async) => "Viper-Async (GPU Memory)".into(),
        }
    }
}

/// The priced phases of one model update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateCosts {
    /// Time the producer's training loop is blocked.
    pub stall: Duration,
    /// Remaining delivery time after the stall (overlaps training).
    pub post_stall: Duration,
    /// Consumer-side apply time (included in `post_stall`; broken out for
    /// reporting).
    pub apply: Duration,
    /// Notification latency until the consumer learns of the update.
    pub notify: Duration,
}

impl UpdateCosts {
    /// End-to-end model update latency (checkpoint start → consumer serving
    /// the new model) — the metric of Fig. 8.
    pub fn update_latency(&self) -> Duration {
        self.stall + self.post_stall + self.notify
    }
}

/// Producer-side capture time: the snapshot copy out of the live training
/// tensors. For the PFS route this is the (blocking) PFS write itself;
/// `metadata_factor` scales its per-tensor metadata cost.
pub fn capture_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> Duration {
    match route {
        Route::GpuToGpu => {
            profile.gpu_capture_time(bytes)
                + profile.tier(Tier::GpuMem).per_tensor_write.mul_f64(ntensors as f64)
        }
        Route::HostToHost => {
            profile.d2h_capture_time(bytes)
                + profile.tier(Tier::HostMem).per_tensor_write.mul_f64(ntensors as f64)
        }
        Route::PfsStaging => {
            let meta_ops = (ntensors as f64 * metadata_factor).ceil() as usize;
            profile.tier(Tier::Pfs).write_time(bytes, meta_ops)
        }
    }
}

/// Extra staging copy performed by the asynchronous producer before handing
/// the snapshot to the background delivery thread. Zero for the PFS route
/// (its write is always blocking).
pub fn stage_time(profile: &MachineProfile, route: Route, bytes: u64) -> Duration {
    match route {
        Route::GpuToGpu => Duration::from_secs_f64(bytes as f64 / profile.gpu_async_stage_bw),
        Route::HostToHost => Duration::from_secs_f64(bytes as f64 / profile.host_async_stage_bw),
        Route::PfsStaging => Duration::ZERO,
    }
}

/// Wire/read time for moving the staged checkpoint to the consumer node.
/// For memory routes this is the RDMA send; for the PFS route it is the
/// consumer's PFS read.
pub fn delivery_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> Duration {
    match route {
        Route::GpuToGpu => profile.gpu_transfer_time(bytes),
        Route::HostToHost => profile.host_transfer_time(bytes),
        Route::PfsStaging => {
            let meta_ops = (ntensors as f64 * metadata_factor).ceil() as usize;
            profile.tier(Tier::Pfs).read_time(bytes, meta_ops)
        }
    }
}

/// Consumer-side apply time: copying the received buffer into the live
/// model's tensors.
pub fn apply_time(
    profile: &MachineProfile,
    route: Route,
    bytes: u64,
    ntensors: usize,
) -> Duration {
    match route {
        Route::GpuToGpu => {
            profile.gpu_capture_time(bytes)
                + profile.tier(Tier::GpuMem).per_tensor_read.mul_f64(ntensors as f64)
        }
        Route::HostToHost | Route::PfsStaging => {
            profile.h2d_apply_time(bytes) + Duration::from_millis(1).mul_f64(ntensors as f64)
        }
    }
}

/// Price one model update of `bytes` across `ntensors` tensors under
/// `strategy`. `metadata_factor` scales the per-tensor metadata cost of the
/// serialization format (1.0 for the lean Viper format, >1 for h5py-style
/// formats) and only affects the PFS route, where metadata operations hit
/// the file system.
pub fn price_update(
    profile: &MachineProfile,
    strategy: TransferStrategy,
    bytes: u64,
    ntensors: usize,
    metadata_factor: f64,
) -> UpdateCosts {
    let route = strategy.route;
    let notify = profile.notify_latency;
    let capture = capture_time(profile, route, bytes, ntensors, metadata_factor);
    let delivery = delivery_time(profile, route, bytes, ntensors, metadata_factor);
    let apply = apply_time(profile, route, bytes, ntensors);
    match route {
        // The PFS write blocks training regardless of mode: the snapshot
        // must be durably staged before training mutates the tensors again.
        Route::PfsStaging => {
            UpdateCosts { stall: capture, post_stall: delivery + apply, apply, notify }
        }
        Route::GpuToGpu | Route::HostToHost => match strategy.mode {
            CaptureMode::Sync => {
                UpdateCosts { stall: capture + delivery, post_stall: apply, apply, notify }
            }
            CaptureMode::Async => {
                let stage = stage_time(profile, route, bytes);
                UpdateCosts { stall: capture, post_stall: stage + delivery + apply, apply, notify }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC1: u64 = 4_700_000_000;
    const TC1_TENSORS: usize = 20;

    fn costs(route: Route, mode: CaptureMode) -> UpdateCosts {
        price_update(
            &MachineProfile::polaris(),
            TransferStrategy { route, mode },
            TC1,
            TC1_TENSORS,
            1.0,
        )
    }

    #[test]
    fn gpu_sync_latency_near_paper() {
        let c = costs(Route::GpuToGpu, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 0.626 s.
        assert!((lat - 0.626).abs() / 0.626 < 0.15, "latency {lat}");
    }

    #[test]
    fn gpu_async_latency_near_paper() {
        let c = costs(Route::GpuToGpu, CaptureMode::Async);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 0.856 s.
        assert!((lat - 0.856).abs() / 0.856 < 0.15, "latency {lat}");
    }

    #[test]
    fn host_sync_latency_near_paper() {
        let c = costs(Route::HostToHost, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper: 2.264 s.
        assert!((lat - 2.264).abs() / 2.264 < 0.15, "latency {lat}");
    }

    #[test]
    fn pfs_latency_near_paper() {
        let c = costs(Route::PfsStaging, CaptureMode::Sync);
        let lat = c.update_latency().as_secs_f64();
        // Paper (Viper-PFS): 6.977 s.
        assert!((lat - 6.977).abs() / 6.977 < 0.15, "latency {lat}");
    }

    #[test]
    fn async_stalls_less_but_lasts_longer() {
        for route in [Route::GpuToGpu, Route::HostToHost] {
            let sync = costs(route, CaptureMode::Sync);
            let async_ = costs(route, CaptureMode::Async);
            assert!(async_.stall < sync.stall, "{route:?}");
            assert!(async_.update_latency() > sync.update_latency(), "{route:?}");
        }
    }

    #[test]
    fn gpu_async_stall_matches_fig9() {
        // Fig. 9: 16 GPU-route checkpoints cost ≈1 s of training overhead.
        let c = costs(Route::GpuToGpu, CaptureMode::Async);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 1.0).abs() < 0.5, "16 ckpts = {total} s");
    }

    #[test]
    fn host_stall_matches_fig9() {
        // Fig. 9: 16 host-route checkpoints ≈ 22 s of training overhead.
        let c = costs(Route::HostToHost, CaptureMode::Async);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 22.0).abs() / 22.0 < 0.15, "16 ckpts = {total} s");
    }

    #[test]
    fn pfs_stall_matches_fig9() {
        // Fig. 9: 16 PFS checkpoints ≈ 60 s of training overhead.
        let c = costs(Route::PfsStaging, CaptureMode::Sync);
        let total = c.stall.as_secs_f64() * 16.0;
        assert!((total - 60.0).abs() / 60.0 < 0.20, "16 ckpts = {total} s");
    }

    #[test]
    fn strategy_ordering_matches_paper() {
        let gpu = costs(Route::GpuToGpu, CaptureMode::Sync).update_latency();
        let host = costs(Route::HostToHost, CaptureMode::Sync).update_latency();
        let pfs = costs(Route::PfsStaging, CaptureMode::Sync).update_latency();
        assert!(gpu < host && host < pfs);
    }

    #[test]
    fn metadata_factor_only_hits_pfs() {
        let p = MachineProfile::polaris();
        let s_gpu = TransferStrategy { route: Route::GpuToGpu, mode: CaptureMode::Sync };
        let s_pfs = TransferStrategy { route: Route::PfsStaging, mode: CaptureMode::Sync };
        let g1 = price_update(&p, s_gpu, TC1, TC1_TENSORS, 1.0);
        let g4 = price_update(&p, s_gpu, TC1, TC1_TENSORS, 4.0);
        assert_eq!(g1, g4);
        let p1 = price_update(&p, s_pfs, TC1, TC1_TENSORS, 1.0);
        let p4 = price_update(&p, s_pfs, TC1, TC1_TENSORS, 4.0);
        assert!(p4.update_latency() > p1.update_latency());
    }

    #[test]
    fn labels_and_lineup() {
        let lineup = TransferStrategy::fig8_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0].label(), "Viper-PFS");
        assert_eq!(lineup[4].label(), "Viper-Async (GPU Memory)");
    }

    #[test]
    fn staging_tiers() {
        assert_eq!(Route::GpuToGpu.staging_tier(), Tier::GpuMem);
        assert_eq!(Route::HostToHost.staging_tier(), Tier::HostMem);
        assert_eq!(Route::PfsStaging.staging_tier(), Tier::Pfs);
    }
}
