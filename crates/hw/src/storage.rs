//! A runtime storage tier: actually stores blobs, accounts modeled time.
//!
//! `StorageTier` is what the Viper engine writes checkpoints into. It keeps
//! real bytes (so round-trips are verified end-to-end), enforces capacity,
//! tracks concurrent load for the contention model, and charges every
//! operation's modeled duration to the shared [`SimClock`].

use crate::{SimClock, Tier, TierSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use viper_formats::Payload;

/// Errors from tier storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Writing would exceed the tier's capacity.
    CapacityExceeded {
        /// Tier that rejected the write.
        tier: Tier,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// No object with the given key exists on this tier.
    NotFound(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::CapacityExceeded {
                tier,
                requested,
                available,
            } => write!(
                f,
                "capacity exceeded on {tier}: requested {requested} bytes, {available} available"
            ),
            StorageError::NotFound(key) => write!(f, "object not found: {key}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// A blob stored on a tier, together with its logical tensor count (which
/// drives the small-I/O cost model on reads).
#[derive(Debug, Clone)]
pub struct StoredObject {
    /// Serialized payload (a shared view; storing never copies the bytes).
    pub bytes: Payload,
    /// Number of tensors in the payload.
    pub ntensors: usize,
    /// Virtual time at which the write completed.
    pub written_at: crate::SimInstant,
}

/// A storage tier instance on a simulated node.
#[derive(Debug)]
pub struct StorageTier {
    spec: TierSpec,
    clock: SimClock,
    objects: Mutex<HashMap<String, StoredObject>>,
    used: Mutex<u64>,
    active_ops: AtomicUsize,
    /// When set, payloads are additionally persisted as files under this
    /// directory (durable across process restarts, like a real PFS).
    disk_dir: Option<std::path::PathBuf>,
}

impl StorageTier {
    /// Create a tier backed by `spec`, charging time to `clock`.
    pub fn new(spec: TierSpec, clock: SimClock) -> Self {
        StorageTier {
            spec,
            clock,
            objects: Mutex::new(HashMap::new()),
            used: Mutex::new(0),
            active_ops: AtomicUsize::new(0),
            disk_dir: None,
        }
    }

    /// Create a tier that also persists every object as a file under `dir`
    /// (created if absent). Objects already present in `dir` from a
    /// previous run are re-indexed on startup, so a "restarted" deployment
    /// can recover durable checkpoints.
    pub fn with_disk(
        spec: TierSpec,
        clock: SimClock,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let tier = StorageTier {
            spec,
            clock,
            objects: Mutex::new(HashMap::new()),
            used: Mutex::new(0),
            active_ops: AtomicUsize::new(0),
            disk_dir: Some(dir.clone()),
        };
        // Re-index surviving files.
        {
            let mut objects = tier.objects.lock();
            let mut used = tier.used.lock();
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                if !entry.file_type()?.is_file() {
                    continue;
                }
                let Some(key) = entry.file_name().to_str().map(Self::decode_key) else {
                    continue;
                };
                let bytes = std::fs::read(entry.path())?;
                *used += bytes.len() as u64;
                objects.insert(
                    key,
                    StoredObject {
                        bytes: Payload::from(bytes),
                        ntensors: 0,
                        written_at: tier.clock.now(),
                    },
                );
            }
        }
        Ok(tier)
    }

    /// Whether this tier persists objects to disk.
    pub fn is_disk_backed(&self) -> bool {
        self.disk_dir.is_some()
    }

    fn encode_key(key: &str) -> String {
        key.replace('%', "%25").replace('/', "%2F")
    }

    fn decode_key(file: &str) -> String {
        file.replace("%2F", "/").replace("%25", "%")
    }

    fn persist(&self, key: &str, bytes: &[u8]) {
        if let Some(dir) = &self.disk_dir {
            // Best effort: the in-memory copy stays authoritative within
            // this process; the file is the durable replica.
            let _ = std::fs::write(dir.join(Self::encode_key(key)), bytes);
        }
    }

    fn unpersist(&self, key: &str) {
        if let Some(dir) = &self.disk_dir {
            let _ = std::fs::remove_file(dir.join(Self::encode_key(key)));
        }
    }

    /// This tier's identity.
    pub fn tier(&self) -> Tier {
        self.spec.tier
    }

    /// This tier's cost model.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        *self.used.lock()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// Store `bytes` under `key`, replacing any previous object. Returns the
    /// modeled duration, which has also been charged to the clock.
    pub fn write(
        &self,
        key: &str,
        bytes: impl Into<Payload>,
        ntensors: usize,
    ) -> Result<Duration, StorageError> {
        let bytes = bytes.into();
        let new_len = bytes.len() as u64;
        {
            let mut used = self.used.lock();
            let existing = self
                .objects
                .lock()
                .get(key)
                .map(|o| o.bytes.len() as u64)
                .unwrap_or(0);
            let projected = *used - existing + new_len;
            if projected > self.spec.capacity {
                return Err(StorageError::CapacityExceeded {
                    tier: self.spec.tier,
                    requested: new_len,
                    available: self.spec.capacity.saturating_sub(*used - existing),
                });
            }
            *used = projected;
        }
        let load = self.active_ops.fetch_add(1, Ordering::AcqRel) + 1;
        let dur = self.spec.write_time_loaded(new_len, ntensors, load);
        let done = self.clock.now().add(dur);
        self.clock.advance_to(done);
        self.active_ops.fetch_sub(1, Ordering::AcqRel);
        self.persist(key, &bytes);
        self.objects.lock().insert(
            key.to_string(),
            StoredObject {
                bytes,
                ntensors,
                written_at: done,
            },
        );
        Ok(dur)
    }

    /// Whether `additional` more bytes would fit right now (advisory: a
    /// concurrent writer can still win the race; writes remain checked).
    pub fn has_capacity_for(&self, additional: u64) -> bool {
        *self.used.lock() + additional <= self.spec.capacity
    }

    /// Store `bytes` under `key` WITHOUT charging modeled time — for
    /// payloads whose placement cost was already accounted elsewhere (e.g.
    /// a snapshot that landed in this tier as part of a capture copy).
    /// Capacity is still enforced.
    pub fn put_uncharged(
        &self,
        key: &str,
        bytes: impl Into<Payload>,
        ntensors: usize,
    ) -> Result<(), StorageError> {
        let bytes = bytes.into();
        let new_len = bytes.len() as u64;
        {
            let mut used = self.used.lock();
            let existing = self
                .objects
                .lock()
                .get(key)
                .map(|o| o.bytes.len() as u64)
                .unwrap_or(0);
            let projected = *used - existing + new_len;
            if projected > self.spec.capacity {
                return Err(StorageError::CapacityExceeded {
                    tier: self.spec.tier,
                    requested: new_len,
                    available: self.spec.capacity.saturating_sub(*used - existing),
                });
            }
            *used = projected;
        }
        self.persist(key, &bytes);
        self.objects.lock().insert(
            key.to_string(),
            StoredObject {
                bytes,
                ntensors,
                written_at: self.clock.now(),
            },
        );
        Ok(())
    }

    /// Fetch the object under `key` WITHOUT charging modeled time — the
    /// counterpart of [`StorageTier::put_uncharged`] for reads whose cost
    /// is priced elsewhere.
    pub fn get_uncharged(&self, key: &str) -> Result<Payload, StorageError> {
        self.objects
            .lock()
            .get(key)
            .map(|o| o.bytes.clone())
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    /// Fetch the object under `key`. Returns the payload and the modeled
    /// read duration (also charged to the clock).
    pub fn read(&self, key: &str) -> Result<(Payload, Duration), StorageError> {
        let obj = self
            .objects
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        let load = self.active_ops.fetch_add(1, Ordering::AcqRel) + 1;
        let dur = self
            .spec
            .read_time_loaded(obj.bytes.len() as u64, obj.ntensors, load);
        self.clock.advance_to(self.clock.now().add(dur));
        self.active_ops.fetch_sub(1, Ordering::AcqRel);
        Ok((obj.bytes, dur))
    }

    /// Remove the object under `key`, freeing its capacity. Returns whether
    /// an object was removed. Deletion is a metadata operation; it costs the
    /// tier's fixed write latency.
    pub fn remove(&self, key: &str) -> bool {
        let removed = self.objects.lock().remove(key);
        if let Some(obj) = &removed {
            *self.used.lock() -= obj.bytes.len() as u64;
            self.unpersist(key);
            self.clock
                .advance_to(self.clock.now().add(self.spec.write_latency));
        }
        removed.is_some()
    }

    /// Whether an object exists under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.lock().contains_key(key)
    }

    /// Keys currently stored (sorted, for deterministic iteration).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.objects.lock().keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineProfile;
    use std::sync::Arc;

    fn host_tier() -> StorageTier {
        let p = MachineProfile::polaris();
        StorageTier::new(*p.tier(Tier::HostMem), SimClock::new())
    }

    fn tiny_tier(capacity: u64) -> StorageTier {
        let p = MachineProfile::polaris();
        let mut spec = *p.tier(Tier::HostMem);
        spec.capacity = capacity;
        StorageTier::new(spec, SimClock::new())
    }

    #[test]
    fn write_read_roundtrip() {
        let t = host_tier();
        let payload = Arc::new(vec![7u8; 1024]);
        t.write("m/v1", payload.clone(), 4).unwrap();
        let (got, dur) = t.read("m/v1").unwrap();
        assert_eq!(got, *payload);
        assert!(dur > Duration::ZERO);
    }

    #[test]
    fn read_missing_key_errors() {
        let t = host_tier();
        assert!(matches!(t.read("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn overwrite_replaces_and_accounts_capacity() {
        let t = host_tier();
        t.write("k", Arc::new(vec![0u8; 100]), 1).unwrap();
        assert_eq!(t.used_bytes(), 100);
        t.write("k", Arc::new(vec![0u8; 50]), 1).unwrap();
        assert_eq!(t.used_bytes(), 50);
        assert_eq!(t.object_count(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let t = tiny_tier(100);
        assert!(t.write("a", Arc::new(vec![0u8; 80]), 1).is_ok());
        let err = t.write("b", Arc::new(vec![0u8; 30]), 1).unwrap_err();
        assert!(matches!(
            err,
            StorageError::CapacityExceeded { available: 20, .. }
        ));
        // Overwriting the existing object within capacity is fine.
        assert!(t.write("a", Arc::new(vec![0u8; 100]), 1).is_ok());
    }

    #[test]
    fn remove_frees_capacity() {
        let t = tiny_tier(100);
        t.write("a", Arc::new(vec![0u8; 100]), 1).unwrap();
        assert!(t.remove("a"));
        assert!(!t.remove("a"));
        assert_eq!(t.used_bytes(), 0);
        assert!(t.write("b", Arc::new(vec![0u8; 100]), 1).is_ok());
    }

    #[test]
    fn clock_advances_by_modeled_time() {
        let p = MachineProfile::polaris();
        let clock = SimClock::new();
        let t = StorageTier::new(*p.tier(Tier::Pfs), clock.clone());
        let dur = t.write("k", Arc::new(vec![0u8; 1_500_000_000]), 0).unwrap();
        // 1.5 GB at 1.5 GB/s + 120 ms latency ≈ 1.12 s.
        assert!((dur.as_secs_f64() - 1.12).abs() < 0.01, "{dur:?}");
        assert!((clock.now().as_secs_f64() - dur.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn keys_sorted() {
        let t = host_tier();
        t.write("b", Arc::new(vec![1]), 1).unwrap();
        t.write("a", Arc::new(vec![1]), 1).unwrap();
        assert_eq!(t.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn uncharged_ops_do_not_advance_clock() {
        let p = MachineProfile::polaris();
        let clock = SimClock::new();
        let t = StorageTier::new(*p.tier(Tier::Pfs), clock.clone());
        t.put_uncharged("k", Arc::new(vec![0u8; 1_000_000_000]), 5)
            .unwrap();
        assert_eq!(clock.now(), crate::SimInstant::ZERO);
        let got = t.get_uncharged("k").unwrap();
        assert_eq!(got.len(), 1_000_000_000);
        assert_eq!(clock.now(), crate::SimInstant::ZERO);
        assert!(t.get_uncharged("missing").is_err());
    }

    #[test]
    fn uncharged_put_still_enforces_capacity() {
        let t = tiny_tier(100);
        assert!(t.put_uncharged("a", Arc::new(vec![0u8; 101]), 1).is_err());
        assert!(t.put_uncharged("a", Arc::new(vec![0u8; 100]), 1).is_ok());
    }

    #[test]
    fn disk_backed_tier_survives_reindex() {
        let p = MachineProfile::polaris();
        let dir = std::env::temp_dir().join(format!("viper-pfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let t = StorageTier::with_disk(*p.tier(Tier::Pfs), SimClock::new(), &dir).unwrap();
            assert!(t.is_disk_backed());
            t.write("model/node/i5", Arc::new(vec![7u8; 256]), 3)
                .unwrap();
            t.put_uncharged("model/node/i6", Arc::new(vec![8u8; 128]), 3)
                .unwrap();
        }
        // "Restart": a fresh tier over the same directory sees the objects.
        let t2 = StorageTier::with_disk(*p.tier(Tier::Pfs), SimClock::new(), &dir).unwrap();
        assert_eq!(t2.object_count(), 2);
        let (bytes, _) = t2.read("model/node/i5").unwrap();
        assert_eq!(bytes, vec![7u8; 256]);
        assert!(t2.contains("model/node/i6"));
        // Removal deletes the file too.
        t2.remove("model/node/i5");
        let t3 = StorageTier::with_disk(*p.tier(Tier::Pfs), SimClock::new(), &dir).unwrap();
        assert_eq!(t3.object_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_encoding_roundtrips() {
        for key in ["a/b/c", "plain", "with%percent", "a%2Fb"] {
            assert_eq!(StorageTier::decode_key(&StorageTier::encode_key(key)), key);
        }
    }

    #[test]
    fn concurrent_writers_contend() {
        // Under concurrency, at least some ops should see load > 1 and thus
        // take longer than the uncontended time. We can't control thread
        // interleaving, so just assert correctness: all writes land.
        let t = Arc::new(host_tier());
        std::thread::scope(|s| {
            for i in 0..8 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    t.write(&format!("k{i}"), Arc::new(vec![0u8; 10_000]), 2)
                        .unwrap();
                });
            }
        });
        assert_eq!(t.object_count(), 8);
    }
}
