//! Property tests for the discrete-event workflow simulator.

use proptest::prelude::*;
use std::time::Duration;
use viper_des::{simulate, Discovery, SimConfig};
use viper_hw::UpdateCosts;

fn costs(stall: f64, post: f64, notify: f64) -> UpdateCosts {
    UpdateCosts {
        stall: Duration::from_secs_f64(stall),
        post_stall: Duration::from_secs_f64(post),
        apply: Duration::from_secs_f64(post / 2.0),
        notify: Duration::from_secs_f64(notify),
    }
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        0.01f64..0.2,   // t_train
        0.001f64..0.02, // t_infer
        0.0f64..2.0,    // stall
        0.0f64..2.0,    // post
        1u64..2000,     // total_infers
        prop::collection::btree_set(11u64..100, 0..8),
    )
        .prop_map(
            |(t_train, t_infer, stall, post, total_infers, ckpts)| SimConfig {
                t_train,
                t_infer,
                costs: costs(stall, post, 0.001),
                s_iter: 10,
                e_iter: 100,
                schedule: ckpts.into_iter().collect(),
                total_infers,
                discovery: Discovery::Push,
            },
        )
}

fn decay(iter: u64) -> f64 {
    3.0 * (-0.02 * iter as f64).exp() + 0.1
}

proptest! {
    /// Exactly the requested inferences are served, at the fixed rate.
    #[test]
    fn serves_exactly_requested(cfg in arb_config()) {
        let r = simulate(&cfg, &decay);
        prop_assert_eq!(r.served, cfg.total_infers);
        let expected_makespan = (cfg.total_infers.saturating_sub(1)) as f64 * cfg.t_infer;
        prop_assert!((r.makespan - expected_makespan).abs() < 1e-6);
    }

    /// Every scheduled checkpoint eventually completes, and overhead is
    /// checkpoints x stall exactly.
    #[test]
    fn all_checkpoints_complete(cfg in arb_config()) {
        let r = simulate(&cfg, &decay);
        prop_assert_eq!(r.num_updates as usize, cfg.schedule.len());
        let expected = cfg.schedule.len() as f64 * cfg.costs.stall.as_secs_f64();
        prop_assert!((r.training_overhead - expected).abs() < 1e-9);
    }

    /// CIL is bounded by the loss curve's range over the run.
    #[test]
    fn cil_within_loss_bounds(cfg in arb_config()) {
        let r = simulate(&cfg, &decay);
        let hi = decay(cfg.s_iter) * cfg.total_infers as f64;
        let lo = decay(cfg.e_iter) * cfg.total_infers as f64;
        prop_assert!(r.cil <= hi + 1e-9, "cil {} hi {hi}", r.cil);
        prop_assert!(r.cil >= lo - 1e-9, "cil {} lo {lo}", r.cil);
    }

    /// Scaling the loss curve scales CIL linearly.
    #[test]
    fn cil_linear_in_loss(cfg in arb_config(), scale in 0.1f64..10.0) {
        let a = simulate(&cfg, &decay).cil;
        let b = simulate(&cfg, &|i| decay(i) * scale).cil;
        prop_assert!((b - a * scale).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// The simulation is deterministic.
    #[test]
    fn deterministic(cfg in arb_config()) {
        let a = simulate(&cfg, &decay);
        let b = simulate(&cfg, &decay);
        prop_assert_eq!(a.cil, b.cil);
        prop_assert_eq!(a.updates.len(), b.updates.len());
        for (x, y) in a.updates.iter().zip(&b.updates) {
            prop_assert_eq!(x.swapped_at, y.swapped_at);
        }
    }

    /// Update timelines are internally consistent and ordered.
    #[test]
    fn update_timeline_ordered(cfg in arb_config()) {
        let r = simulate(&cfg, &decay);
        let mut prev_swap = f64::NEG_INFINITY;
        for u in &r.updates {
            prop_assert!(u.staged_at <= u.discovered_at);
            prop_assert!(u.discovered_at <= u.swapped_at + 1e-12);
            prop_assert!(u.latency >= 0.0);
            prop_assert!(u.swapped_at >= prev_swap);
            prev_swap = u.swapped_at;
        }
    }

    /// Push discovery never yields higher CIL than any polling interval.
    #[test]
    fn push_never_worse_than_poll(cfg in arb_config(), interval in 0.01f64..10.0) {
        let push = simulate(&cfg, &decay).cil;
        let mut poll_cfg = cfg;
        poll_cfg.discovery = Discovery::Poll { interval };
        let poll = simulate(&poll_cfg, &decay).cil;
        prop_assert!(push <= poll + 1e-9, "push {push} > poll {poll}");
    }

    /// With a decreasing loss curve and zero update costs, *every* added
    /// checkpoint weakly reduces CIL.
    #[test]
    fn free_checkpoints_never_hurt(total in 100u64..2000, extra in 11u64..100) {
        let base_cfg = SimConfig {
            t_train: 0.05,
            t_infer: 0.005,
            costs: costs(0.0, 0.0, 0.0),
            s_iter: 10,
            e_iter: 100,
            schedule: vec![50],
            total_infers: total,
            discovery: Discovery::Push,
        };
        let base = simulate(&base_cfg, &decay).cil;
        let mut more = base_cfg;
        if extra != 50 {
            more.schedule.push(extra);
            more.schedule.sort();
        }
        let richer = simulate(&more, &decay).cil;
        prop_assert!(richer <= base + 1e-9);
    }
}
