//! Fleet-scale distribution: direct unicast vs the relay tree.
//!
//! The runtime (`viper` core) drives the relay tree over a real fabric,
//! but it tops out at fleets of tens of consumers per test budget. This
//! module replays the *shape* of distribution at paper-fleet scale
//! (1k–100k consumers) on a closed-form timeline: a producer serializes
//! sends onto its NIC, every relay node serializes re-serves to its
//! children, and a full-model transfer costs `t_send` per hop (scaled by
//! the receiver's link quality). Direct unicast therefore pays a makespan
//! linear in the fleet size, while the bounded-fan-out tree pays
//! `O(fanout · log_fanout n)` — the claim the ablation records.
//!
//! Fleet realism comes from two knobs swept by the CI fault matrix:
//! membership churn (seeded joins and failures between update rounds,
//! failures healed through [`Topology::reparent`] exactly like the
//! runtime) and asymmetric straggler links (a seeded fraction of
//! consumers whose inbound link is `straggler_slowdown`× slower). Every
//! round asserts the delivery invariant the runtime's group ACK protects:
//! each live member is reachable from exactly one root, exactly once.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use viper_net::Topology;

/// Configuration of a fleet fan-out simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutConfig {
    /// Initial fleet size (must be >= 1).
    pub consumers: usize,
    /// Relay-tree fan-out bound (must be >= 1).
    pub fanout: usize,
    /// Seconds to ship one full model across one healthy hop.
    pub t_send: f64,
    /// Update rounds to simulate (each round delivers one model version).
    pub rounds: u64,
    /// Membership-churn events between consecutive rounds (alternating
    /// seeded failures and joins; 0 = a static fleet).
    pub churn_per_round: usize,
    /// Fraction of members whose inbound link is degraded.
    pub straggler_fraction: f64,
    /// Slowdown multiplier for straggler links (1.0 = healthy).
    pub straggler_slowdown: f64,
    /// Seed for churn victim selection and straggler placement.
    pub seed: u64,
}

/// One update round's measured outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutRound {
    /// Round index (0-based).
    pub round: u64,
    /// Live members when this round's update shipped.
    pub members: usize,
    /// Relay-tree depth (levels) for this round.
    pub depth: usize,
    /// Straggler-linked members in this round's fleet.
    pub stragglers: usize,
    /// Makespan of direct unicast delivery (seconds).
    pub direct_makespan: f64,
    /// Makespan of relay-tree delivery (seconds).
    pub tree_makespan: f64,
    /// Relay failures healed by re-parenting before this round.
    pub reparents: usize,
    /// Members that joined before this round.
    pub joins: usize,
}

/// Result of a fleet fan-out simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutResult {
    /// Per-round outcomes, in order.
    pub rounds: Vec<FanoutRound>,
    /// Total relay failures healed by re-parenting across the run.
    pub reparent_events: usize,
    /// Total members that joined across the run.
    pub join_events: usize,
    /// Rounds in which some live member was unreachable or reachable
    /// more than once (must stay 0 — the exactly-once invariant).
    pub delivery_violations: usize,
}

impl FanoutResult {
    /// Worst-round tree makespan (seconds).
    pub fn tree_makespan(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.tree_makespan)
            .fold(0.0, f64::max)
    }

    /// Worst-round direct-unicast makespan (seconds).
    pub fn direct_makespan(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.direct_makespan)
            .fold(0.0, f64::max)
    }

    /// Worst-round direct/tree speedup.
    pub fn speedup(&self) -> f64 {
        self.direct_makespan() / self.tree_makespan().max(f64::MIN_POSITIVE)
    }

    /// Deepest tree observed across the run.
    pub fn max_depth(&self) -> usize {
        self.rounds.iter().map(|r| r.depth).max().unwrap_or(0)
    }
}

/// SplitMix64 — the same deterministic stream family the fault plan
/// draws from.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a member name, for seed-stable per-node draws that
/// survive membership churn (index-based draws would reshuffle the
/// straggler set every join).
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-member inbound-link slowdown under `cfg`.
fn link_slowdown(cfg: &FanoutConfig, member: &str) -> f64 {
    let mut state = cfg.seed ^ fnv1a(member);
    let draw = mix(&mut state) as f64 / u64::MAX as f64;
    if draw < cfg.straggler_fraction {
        cfg.straggler_slowdown
    } else {
        1.0
    }
}

/// Arrival instant of the update at every member: the producer
/// serializes sends to the roots, and each relay serializes re-serves to
/// its children in deterministic child order. Returns `(makespan,
/// arrivals-in-BFS-order-count)` — the count doubles as the exactly-once
/// coverage check.
fn propagate(topo: &Topology, cfg: &FanoutConfig) -> (f64, usize) {
    let mut makespan = 0.0f64;
    let mut reached = 0usize;
    let mut queue: VecDeque<(String, f64)> = VecDeque::new();
    let mut clock = 0.0;
    for root in topo.roots() {
        clock += cfg.t_send * link_slowdown(cfg, root);
        queue.push_back((root.to_string(), clock));
    }
    while let Some((node, at)) = queue.pop_front() {
        makespan = makespan.max(at);
        reached += 1;
        let mut lane = at;
        for child in topo.children_of(&node) {
            lane += cfg.t_send * link_slowdown(cfg, child);
            queue.push_back((child.to_string(), lane));
        }
    }
    (makespan, reached)
}

/// Makespan of direct unicast: the producer serializes one full send per
/// member onto its NIC, so the last member's arrival is the sum of every
/// per-member transfer.
fn direct_makespan(members: &[String], cfg: &FanoutConfig) -> f64 {
    members
        .iter()
        .map(|m| cfg.t_send * link_slowdown(cfg, m))
        .sum()
}

/// Run the fleet fan-out simulation.
///
/// Churn is applied *between* rounds: round 0 measures the pristine
/// fleet; before each later round, `churn_per_round` seeded events fire,
/// alternating member failure (healed via [`Topology::reparent`], like
/// the runtime's relay-failure path) and member join (healed via a
/// deterministic rebuild, like the runtime's membership refresh).
pub fn simulate_fanout(cfg: &FanoutConfig) -> FanoutResult {
    assert!(cfg.consumers >= 1, "need at least one consumer");
    assert!(cfg.fanout >= 1, "fan-out bound must be at least 1");
    assert!(cfg.t_send > 0.0, "per-hop send time must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.straggler_fraction),
        "straggler fraction must be a probability"
    );
    assert!(
        cfg.straggler_slowdown >= 1.0,
        "a straggler link cannot be faster than healthy"
    );

    let mut members: Vec<String> = (0..cfg.consumers).map(|i| format!("c{i}")).collect();
    let mut topo = Topology::build(&members, cfg.fanout).expect("fresh member list is valid");
    let mut rng = cfg.seed;
    let mut joined = 0usize;

    let mut rounds = Vec::with_capacity(cfg.rounds as usize);
    let mut reparent_events = 0usize;
    let mut join_events = 0usize;
    let mut delivery_violations = 0usize;

    for round in 0..cfg.rounds {
        let (mut reparents, mut joins) = (0usize, 0usize);
        if round > 0 {
            for k in 0..cfg.churn_per_round {
                if k % 2 == 0 && members.len() > 1 {
                    // Failure: a seeded victim drops out; the tree heals
                    // in place, never losing or duplicating a subtree.
                    let victim = members[mix(&mut rng) as usize % members.len()].clone();
                    topo.reparent(&victim).expect("victim is a member");
                    members.retain(|m| m != &victim);
                    reparents += 1;
                } else {
                    // Join: membership changed, rebuild deterministically
                    // (the runtime's refresh path).
                    joined += 1;
                    members.push(format!("j{joined}"));
                    topo = Topology::build(&members, cfg.fanout).expect("rebuild is valid");
                    joins += 1;
                }
            }
        }
        reparent_events += reparents;
        join_events += joins;

        let (tree, reached) = propagate(&topo, cfg);
        if reached != members.len() {
            delivery_violations += 1;
        }
        rounds.push(FanoutRound {
            round,
            members: members.len(),
            depth: topo.depth(),
            stragglers: members
                .iter()
                .filter(|m| link_slowdown(cfg, m) > 1.0)
                .count(),
            direct_makespan: direct_makespan(&members, cfg),
            tree_makespan: tree,
            reparents,
            joins,
        });
    }

    FanoutResult {
        rounds,
        reparent_events,
        join_events,
        delivery_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Seeds for the churn sweep (`VIPER_FAULT_SEEDS` in CI's fault
    /// matrix, same contract as the runtime fault tests).
    fn fault_seeds() -> Vec<u64> {
        std::env::var("VIPER_FAULT_SEEDS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<u64>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![7, 42])
    }

    fn fleet(consumers: usize, seed: u64) -> FanoutConfig {
        FanoutConfig {
            consumers,
            fanout: 8,
            t_send: 0.024,
            rounds: 4,
            churn_per_round: 0,
            straggler_fraction: 0.0,
            straggler_slowdown: 1.0,
            seed,
        }
    }

    #[test]
    fn tree_makespan_is_sublinear_direct_is_linear() {
        let small = simulate_fanout(&fleet(1_000, 7));
        let large = simulate_fanout(&fleet(10_000, 7));
        // Direct unicast scales with the fleet; the tree scales with
        // its depth.
        let direct_growth = large.direct_makespan() / small.direct_makespan();
        let tree_growth = large.tree_makespan() / small.tree_makespan();
        assert!(
            (direct_growth - 10.0).abs() < 0.01,
            "direct must be linear, grew {direct_growth:.2}x"
        );
        assert!(
            tree_growth < 2.0,
            "tree must be ~log, grew {tree_growth:.2}x"
        );
        assert!(small.tree_makespan() < small.direct_makespan() / 10.0);
        assert!(large.speedup() > 100.0, "speedup {:.0}", large.speedup());
        assert_eq!(large.max_depth(), 6, "10k @ fanout 8");
        assert_eq!(small.delivery_violations, 0);
        assert_eq!(large.delivery_violations, 0);
    }

    #[test]
    fn churned_fleet_keeps_exactly_once_coverage() {
        // Joins and failures between every round, swept across the fault
        // seeds: the exactly-once invariant must hold in every round, and
        // both churn paths (reparent heal, rebuild) must actually fire.
        // VIPER_REACTOR_THREADS sweeps the runtime axis; the closed-form
        // timeline must not depend on it, which re-running verifies.
        let threads = std::env::var("VIPER_REACTOR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1usize)
            .max(1);
        for seed in fault_seeds() {
            let cfg = FanoutConfig {
                rounds: 12,
                churn_per_round: 5,
                straggler_fraction: 0.1,
                straggler_slowdown: 8.0,
                ..fleet(1_000, seed)
            };
            let runs: Vec<FanoutResult> = (0..threads.clamp(2, 4))
                .map(|_| simulate_fanout(&cfg))
                .collect();
            let r = &runs[0];
            assert_eq!(r.delivery_violations, 0, "seed {seed}: coverage broken");
            assert!(r.reparent_events > 0, "seed {seed}: failures never fired");
            assert!(r.join_events > 0, "seed {seed}: joins never fired");
            for round in &r.rounds {
                assert!(
                    round.tree_makespan < round.direct_makespan,
                    "seed {seed} round {}: tree lost its advantage",
                    round.round
                );
            }
            for other in &runs[1..] {
                assert_eq!(
                    format!("{r:?}"),
                    format!("{other:?}"),
                    "seed {seed}: simulation must be deterministic"
                );
            }
        }
    }

    #[test]
    fn stragglers_hurt_direct_delivery_more_than_the_tree() {
        // Every straggler delays the serialized direct stream; in the
        // tree only its own lane (and subtree) waits, so the tree's
        // penalty is bounded by one root-to-leaf chain.
        let clean = simulate_fanout(&fleet(1_000, 7));
        let slow = simulate_fanout(&FanoutConfig {
            straggler_fraction: 0.1,
            straggler_slowdown: 8.0,
            ..fleet(1_000, 7)
        });
        let direct_penalty = slow.direct_makespan() - clean.direct_makespan();
        let tree_penalty = slow.tree_makespan() - clean.tree_makespan();
        assert!(slow.rounds[0].stragglers > 0, "no straggler was placed");
        assert!(direct_penalty > 0.0);
        assert!(tree_penalty >= 0.0);
        assert!(
            direct_penalty > tree_penalty,
            "direct {direct_penalty:.3}s vs tree {tree_penalty:.3}s"
        );
    }

    #[test]
    fn degenerate_fleets_are_valid() {
        let solo = simulate_fanout(&fleet(1, 7));
        assert_eq!(solo.delivery_violations, 0);
        assert!((solo.tree_makespan() - solo.direct_makespan()).abs() < 1e-12);
        // Fan-out 1 degenerates to a chain: tree == direct.
        let chain = simulate_fanout(&FanoutConfig {
            fanout: 1,
            ..fleet(64, 7)
        });
        assert!((chain.tree_makespan() - chain.direct_makespan()).abs() < 1e-9);
        assert_eq!(chain.max_depth(), 64);
    }
}
