//! The producer/consumer workflow simulation.

use crate::engine::EventQueue;
use serde::{Deserialize, Serialize};
use viper_hw::UpdateCosts;

/// How the consumer learns that a new model version is staged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Discovery {
    /// Viper's push notification: the consumer is told after the broker's
    /// notify latency (taken from [`UpdateCosts::notify`]).
    Push,
    /// Baseline polling: the consumer notices at the next poll tick.
    Poll {
        /// Poll interval in seconds (the paper cites a ≥1 ms floor).
        interval: f64,
    },
}

/// Configuration of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Training time per iteration (seconds) — constant per Fig. 6.
    pub t_train: f64,
    /// Inference time per request (seconds) — constant per Fig. 6.
    pub t_infer: f64,
    /// Priced phases of one model update for the chosen strategy.
    pub costs: UpdateCosts,
    /// Warm-up end: the producer resumes training from this iteration at
    /// virtual time zero, and the consumer starts serving with the model
    /// captured at this iteration.
    pub s_iter: u64,
    /// Last training iteration.
    pub e_iter: u64,
    /// Checkpoint iterations (ascending, within `(s_iter, e_iter]`).
    pub schedule: Vec<u64>,
    /// Number of inferences the consumer must serve.
    pub total_infers: u64,
    /// Update discovery mechanism.
    pub discovery: Discovery,
}

/// One completed model update as observed in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Training iteration the checkpoint captured.
    pub iteration: u64,
    /// 1-based update version.
    pub version: u64,
    /// Virtual time the checkpoint left the producer (stall end).
    pub staged_at: f64,
    /// Virtual time the consumer learned about it.
    pub discovered_at: f64,
    /// Virtual time the consumer atomically switched to it.
    pub swapped_at: f64,
    /// End-to-end update latency (checkpoint start → swap).
    pub latency: f64,
}

/// Ground-truth results of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Cumulative inference loss over the served inferences.
    pub cil: f64,
    /// Inferences actually served (== `total_infers`).
    pub served: u64,
    /// Model updates completed during the run.
    pub num_updates: u64,
    /// Total producer stall caused by checkpointing (seconds).
    pub training_overhead: f64,
    /// Mean end-to-end update latency (seconds; 0 if no updates).
    pub mean_update_latency: f64,
    /// Virtual time of the last served inference.
    pub makespan: f64,
    /// Virtual time the producer finished iteration `e_iter` (0 if the run
    /// ended first).
    pub producer_finished_at: f64,
    /// Every completed update, in order.
    pub updates: Vec<ModelUpdate>,
}

#[derive(Debug)]
enum Event {
    /// Training iteration `k` completed.
    IterDone(u64),
    /// Checkpoint stall after iteration `k` completed; producer resumes.
    StallDone(u64),
    /// Update for iteration `k` swapped in on the consumer.
    Swapped {
        iter: u64,
        started_at: f64,
        staged_at: f64,
        discovered_at: f64,
    },
    /// Inference `j` issued.
    Inference(u64),
}

/// Run the workflow simulation. `loss_at(iter)` is the ground-truth
/// training/inference loss of the model captured at `iter` (Assumption 2 of
/// the paper equates the two).
pub fn simulate(cfg: &SimConfig, loss_at: &dyn Fn(u64) -> f64) -> SimResult {
    assert!(
        cfg.t_train > 0.0 && cfg.t_infer > 0.0,
        "iteration times must be positive"
    );
    assert!(
        cfg.schedule.windows(2).all(|w| w[0] < w[1]),
        "schedule must be strictly ascending"
    );
    assert!(
        cfg.schedule
            .iter()
            .all(|&c| c > cfg.s_iter && c <= cfg.e_iter),
        "schedule must lie within (s_iter, e_iter]"
    );

    let stall = cfg.costs.stall.as_secs_f64();
    let post = cfg.costs.post_stall.as_secs_f64();
    let notify = cfg.costs.notify.as_secs_f64();

    let mut q: EventQueue<Event> = EventQueue::new();
    let mut schedule = cfg.schedule.iter().copied().peekable();

    // Producer starts iteration s_iter + 1 at time 0.
    if cfg.s_iter < cfg.e_iter {
        q.schedule(cfg.t_train, Event::IterDone(cfg.s_iter + 1));
    }
    // Consumer issues the first inference immediately.
    if cfg.total_infers > 0 {
        q.schedule(0.0, Event::Inference(0));
    }

    let mut current_model_iter = cfg.s_iter;
    let mut served = 0u64;
    let mut cil = 0.0;
    let mut makespan = 0.0;
    let mut producer_finished_at = 0.0;
    let mut training_overhead = 0.0;
    let mut updates: Vec<ModelUpdate> = Vec::with_capacity(cfg.schedule.len());

    while let Some(item) = q.pop() {
        let now = item.at;
        match item.event {
            Event::IterDone(k) => {
                let is_ckpt = schedule.peek() == Some(&k);
                if is_ckpt {
                    schedule.next();
                    training_overhead += stall;
                    q.schedule(now + stall, Event::StallDone(k));
                } else {
                    if k == cfg.e_iter {
                        producer_finished_at = now;
                    } else {
                        q.schedule(now + cfg.t_train, Event::IterDone(k + 1));
                    }
                }
            }
            Event::StallDone(k) => {
                let staged_at = now;
                let started_at = now - stall;
                let discovered_at = match cfg.discovery {
                    Discovery::Push => staged_at + notify,
                    Discovery::Poll { interval } => {
                        assert!(interval > 0.0, "poll interval must be positive");
                        (staged_at / interval).ceil() * interval
                    }
                };
                q.schedule(
                    discovered_at + post,
                    Event::Swapped {
                        iter: k,
                        started_at,
                        staged_at,
                        discovered_at,
                    },
                );
                if k == cfg.e_iter {
                    producer_finished_at = now;
                } else {
                    q.schedule(now + cfg.t_train, Event::IterDone(k + 1));
                }
            }
            Event::Swapped {
                iter,
                started_at,
                staged_at,
                discovered_at,
            } => {
                if iter > current_model_iter {
                    current_model_iter = iter;
                }
                updates.push(ModelUpdate {
                    iteration: iter,
                    version: updates.len() as u64 + 1,
                    staged_at,
                    discovered_at,
                    swapped_at: now,
                    latency: now - started_at,
                });
            }
            Event::Inference(j) => {
                cil += loss_at(current_model_iter);
                served += 1;
                makespan = now;
                // The producer keeps training (and checkpointing) after the
                // last inference — the paper's overhead numbers count every
                // scheduled checkpoint — so drain the queue instead of
                // breaking; we only stop issuing new inferences.
                if served < cfg.total_infers {
                    q.schedule(now + cfg.t_infer, Event::Inference(j + 1));
                }
            }
        }
    }

    let mean_update_latency = if updates.is_empty() {
        0.0
    } else {
        updates.iter().map(|u| u.latency).sum::<f64>() / updates.len() as f64
    };

    SimResult {
        cil,
        served,
        num_updates: updates.len() as u64,
        training_overhead,
        mean_update_latency,
        makespan,
        producer_finished_at,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn costs(stall: f64, post: f64, notify: f64) -> UpdateCosts {
        UpdateCosts {
            stall: Duration::from_secs_f64(stall),
            post_stall: Duration::from_secs_f64(post),
            apply: Duration::from_secs_f64(post / 2.0),
            notify: Duration::from_secs_f64(notify),
        }
    }

    fn base_cfg() -> SimConfig {
        SimConfig {
            t_train: 0.1,
            t_infer: 0.01,
            costs: costs(0.5, 0.3, 0.001),
            s_iter: 10,
            e_iter: 100,
            schedule: vec![20, 40, 80],
            total_infers: 1_000,
            discovery: Discovery::Push,
        }
    }

    fn decay(iter: u64) -> f64 {
        2.0 * (-0.01 * iter as f64).exp() + 0.2
    }

    #[test]
    fn serves_exactly_total_inferences() {
        let r = simulate(&base_cfg(), &decay);
        assert_eq!(r.served, 1_000);
        // Inferences at fixed rate: makespan = (n-1) * t_infer.
        assert!((r.makespan - 999.0 * 0.01).abs() < 1e-9);
    }

    #[test]
    fn all_updates_complete_when_horizon_is_long() {
        let r = simulate(&base_cfg(), &decay);
        assert_eq!(r.num_updates, 3);
        assert_eq!(r.updates[0].iteration, 20);
        assert_eq!(r.updates[2].iteration, 80);
        assert!((r.training_overhead - 1.5).abs() < 1e-9);
    }

    #[test]
    fn update_timeline_is_consistent() {
        let r = simulate(&base_cfg(), &decay);
        for u in &r.updates {
            assert!(u.staged_at < u.discovered_at);
            assert!(u.discovered_at < u.swapped_at);
            assert!((u.swapped_at - u.discovered_at - 0.3).abs() < 1e-9);
            // latency = stall + notify + post.
            assert!((u.latency - (0.5 + 0.001 + 0.3)).abs() < 1e-9);
        }
    }

    #[test]
    fn first_checkpoint_timing_exact() {
        // Iteration 11..=20 at 0.1 s each -> iter 20 done at 1.0 s; stall to
        // 1.5; notify 1 ms; post 0.3 -> swap at 1.801.
        let r = simulate(&base_cfg(), &decay);
        let u = &r.updates[0];
        assert!((u.staged_at - 1.5).abs() < 1e-9);
        assert!((u.swapped_at - 1.801).abs() < 1e-9);
    }

    #[test]
    fn cil_decreases_with_checkpoints() {
        let with = simulate(&base_cfg(), &decay);
        let mut cfg = base_cfg();
        cfg.schedule = vec![];
        let without = simulate(&cfg, &decay);
        assert!(with.cil < without.cil);
        assert!((without.cil - decay(10) * 1000.0).abs() < 1e-6);
    }

    #[test]
    fn stalls_delay_training_completion() {
        let mut cfg = base_cfg();
        cfg.total_infers = 100_000; // long horizon so producer finishes
        let with = simulate(&cfg, &decay);
        cfg.schedule = vec![];
        let without = simulate(&cfg, &decay);
        let expected_delta = 3.0 * 0.5;
        assert!(
            (with.producer_finished_at - without.producer_finished_at - expected_delta).abs()
                < 1e-9
        );
    }

    #[test]
    fn polling_discovers_later_than_push() {
        let mut cfg = base_cfg();
        cfg.discovery = Discovery::Poll { interval: 1.0 };
        let poll = simulate(&cfg, &decay);
        let push = simulate(&base_cfg(), &decay);
        for (a, b) in poll.updates.iter().zip(&push.updates) {
            assert!(a.discovered_at >= b.discovered_at);
            // Poll discovery lands on the grid.
            assert!((a.discovered_at / 1.0).fract().abs() < 1e-9);
        }
        assert!(poll.cil >= push.cil);
    }

    #[test]
    fn faster_strategy_gives_lower_cil() {
        // Fig. 9's claim: for the same schedule, GPU-like costs beat
        // PFS-like costs on CIL.
        let mut gpu = base_cfg();
        gpu.costs = costs(0.01, 0.1, 0.001);
        gpu.total_infers = 5_000;
        let mut pfs = base_cfg();
        pfs.costs = costs(3.5, 3.5, 0.001);
        pfs.total_infers = 5_000;
        let g = simulate(&gpu, &decay);
        let p = simulate(&pfs, &decay);
        assert!(g.cil < p.cil, "gpu {} pfs {}", g.cil, p.cil);
        assert!(g.training_overhead < p.training_overhead);
    }

    #[test]
    fn zero_inferences_is_degenerate_but_valid() {
        let mut cfg = base_cfg();
        cfg.total_infers = 0;
        let r = simulate(&cfg, &decay);
        assert_eq!(r.served, 0);
        assert_eq!(r.cil, 0.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_schedule_rejected() {
        let mut cfg = base_cfg();
        cfg.schedule = vec![40, 20];
        simulate(&cfg, &decay);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn out_of_range_schedule_rejected() {
        let mut cfg = base_cfg();
        cfg.schedule = vec![5];
        simulate(&cfg, &decay);
    }
}
