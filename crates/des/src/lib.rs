//! # viper-des
//!
//! A discrete-event simulator for paper-scale producer/consumer timelines.
//!
//! The paper's schedule experiments (Fig. 9, Fig. 10, Table 1) run
//! multi-gigabyte models for tens of thousands of inferences on two Polaris
//! nodes. This crate replays those workflows on a virtual timeline: a
//! producer process trains iteration by iteration and stalls at scheduled
//! checkpoints; deliveries complete after the strategy's modeled transfer
//! time; a consumer process issues inferences at a fixed rate, each served
//! by the newest model version it has *discovered* (via push notification
//! or polling). The simulator reports ground-truth cumulative inference
//! loss (CIL), training overhead, and per-update latencies — the quantities
//! the paper's predictor (viper-predictor) only estimates.
//!
//! ## Example
//!
//! ```
//! use viper_des::{Discovery, SimConfig, simulate};
//! use viper_hw::{price_update, CaptureMode, MachineProfile, Route, TransferStrategy};
//!
//! let profile = MachineProfile::polaris();
//! let strategy = TransferStrategy { route: Route::GpuToGpu, mode: CaptureMode::Async };
//! let costs = price_update(&profile, strategy, 600_000_000, 16, 1.0);
//!
//! let cfg = SimConfig {
//!     t_train: 0.05,
//!     t_infer: 0.005,
//!     costs,
//!     s_iter: 216,
//!     e_iter: 216 * 4,
//!     schedule: vec![432, 648, 864],
//!     total_infers: 10_000,
//!     discovery: Discovery::Push,
//! };
//! let result = simulate(&cfg, &|iter| 2.0 * (-0.005 * iter as f64).exp() + 0.3);
//! assert_eq!(result.num_updates, 3);
//! assert!(result.cil > 0.0);
//! ```

#![warn(missing_docs)]

mod engine;
mod workflow;

pub mod fanout;
pub mod multi;

pub use engine::{EventQueue, Scheduled};
pub use fanout::{simulate_fanout, FanoutConfig, FanoutResult, FanoutRound};
pub use multi::{simulate_multi, ConsumerSpec, MultiSimConfig, MultiSimResult};
pub use workflow::{simulate, Discovery, ModelUpdate, SimConfig, SimResult};
