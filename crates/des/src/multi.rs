//! Multi-producer / multi-consumer workflow simulation — the paper's §6
//! future work at paper scale.
//!
//! Producers model synchronous data-parallel training: all ranks advance
//! the same iteration counter, and checkpoint work is sharded across them
//! DeepFreeze-style, so the per-rank stall (and hence the wall-clock cost
//! of a model update) shrinks roughly as `1/N`. Consumers are independent
//! serving replicas, each with its own discovery mechanism and inference
//! budget; the aggregate CIL sums over them.

use crate::workflow::{Discovery, ModelUpdate};
use serde::{Deserialize, Serialize};
use viper_hw::UpdateCosts;

/// One consumer's configuration in a multi-consumer run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConsumerSpec {
    /// Inference time per request (seconds).
    pub t_infer: f64,
    /// Inferences this consumer serves.
    pub total_infers: u64,
    /// How this consumer discovers updates.
    pub discovery: Discovery,
}

/// Configuration of a multi-producer / multi-consumer run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSimConfig {
    /// Data-parallel producer ranks (checkpoint capture is sharded across
    /// them; must be >= 1).
    pub nproducers: usize,
    /// Training time per (synchronous) iteration, seconds.
    pub t_train: f64,
    /// Priced phases of a *full-model* update for the chosen strategy.
    pub costs: UpdateCosts,
    /// Warm-up end iteration.
    pub s_iter: u64,
    /// Last training iteration.
    pub e_iter: u64,
    /// Checkpoint iterations (ascending, within `(s_iter, e_iter]`).
    pub schedule: Vec<u64>,
    /// The serving replicas.
    pub consumers: Vec<ConsumerSpec>,
}

/// Per-consumer outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsumerResult {
    /// Cumulative inference loss for this consumer.
    pub cil: f64,
    /// Inferences served.
    pub served: u64,
    /// Updates this consumer completed.
    pub updates: Vec<ModelUpdate>,
}

/// Result of a multi simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSimResult {
    /// Per-rank producer stall total (seconds) — equal across ranks.
    pub training_overhead_per_rank: f64,
    /// Virtual time the (synchronous) producers finished `e_iter`.
    pub producers_finished_at: f64,
    /// One result per consumer, in input order.
    pub per_consumer: Vec<ConsumerResult>,
}

impl MultiSimResult {
    /// Aggregate CIL across all consumers.
    pub fn total_cil(&self) -> f64 {
        self.per_consumer.iter().map(|c| c.cil).sum()
    }
}

/// Run the multi-producer/multi-consumer simulation.
///
/// `loss_at(iter)` is the shared ground-truth loss curve (data-parallel
/// ranks hold replicas of one model).
pub fn simulate_multi(cfg: &MultiSimConfig, loss_at: &dyn Fn(u64) -> f64) -> MultiSimResult {
    assert!(cfg.nproducers >= 1, "need at least one producer rank");
    assert!(cfg.t_train > 0.0, "iteration time must be positive");
    assert!(
        cfg.schedule.windows(2).all(|w| w[0] < w[1]),
        "schedule must be strictly ascending"
    );
    assert!(
        cfg.schedule
            .iter()
            .all(|&c| c > cfg.s_iter && c <= cfg.e_iter),
        "schedule must lie within (s_iter, e_iter]"
    );

    // Sharded capture: each rank stalls for its 1/N slice of the model.
    let stall = cfg.costs.stall.as_secs_f64() / cfg.nproducers as f64;
    let post = cfg.costs.post_stall.as_secs_f64();
    let notify = cfg.costs.notify.as_secs_f64();

    // Producer timeline (synchronous ranks share it): iteration k completes
    // at (k - s_iter) * t_train + stalls of checkpoints at iterations <= k.
    let mut staged: Vec<(u64, f64)> = Vec::with_capacity(cfg.schedule.len());
    let mut stall_so_far = 0.0;
    for &c in &cfg.schedule {
        let t_done = (c - cfg.s_iter) as f64 * cfg.t_train + stall_so_far;
        stall_so_far += stall;
        staged.push((c, t_done + stall));
    }
    let producers_finished_at = (cfg.e_iter - cfg.s_iter) as f64 * cfg.t_train + stall_so_far;

    let per_consumer = cfg
        .consumers
        .iter()
        .map(|spec| {
            assert!(spec.t_infer > 0.0, "inference time must be positive");
            // Swap times for this consumer.
            let updates: Vec<ModelUpdate> = staged
                .iter()
                .enumerate()
                .map(|(i, &(iter, staged_at))| {
                    let discovered_at = match spec.discovery {
                        Discovery::Push => staged_at + notify,
                        Discovery::Poll { interval } => {
                            assert!(interval > 0.0, "poll interval must be positive");
                            (staged_at / interval).ceil() * interval
                        }
                    };
                    let swapped_at = discovered_at + post;
                    ModelUpdate {
                        iteration: iter,
                        version: i as u64 + 1,
                        staged_at,
                        discovered_at,
                        swapped_at,
                        latency: swapped_at - (staged_at - stall),
                    }
                })
                .collect();

            // Walk the inference stream against the swap timeline.
            let mut cil = 0.0;
            let mut current = cfg.s_iter;
            let mut next_update = 0usize;
            for j in 0..spec.total_infers {
                let t = j as f64 * spec.t_infer;
                while next_update < updates.len() && updates[next_update].swapped_at <= t {
                    current = current.max(updates[next_update].iteration);
                    next_update += 1;
                }
                cil += loss_at(current);
            }
            ConsumerResult {
                cil,
                served: spec.total_infers,
                updates,
            }
        })
        .collect();

    MultiSimResult {
        training_overhead_per_rank: stall_so_far,
        producers_finished_at,
        per_consumer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn costs() -> UpdateCosts {
        UpdateCosts {
            stall: Duration::from_secs_f64(0.8),
            post_stall: Duration::from_secs_f64(0.3),
            apply: Duration::from_secs_f64(0.1),
            notify: Duration::from_secs_f64(0.001),
        }
    }

    fn decay(iter: u64) -> f64 {
        2.0 * (-0.01 * iter as f64).exp() + 0.2
    }

    fn base(nproducers: usize, consumers: Vec<ConsumerSpec>) -> MultiSimConfig {
        MultiSimConfig {
            nproducers,
            t_train: 0.1,
            costs: costs(),
            s_iter: 10,
            e_iter: 110,
            schedule: vec![30, 60, 90],
            consumers,
        }
    }

    fn one_consumer() -> ConsumerSpec {
        ConsumerSpec {
            t_infer: 0.01,
            total_infers: 2_000,
            discovery: Discovery::Push,
        }
    }

    #[test]
    fn single_rank_single_consumer_matches_des() {
        // The closed-form multi simulator must agree with the event-driven
        // one on their common case.
        let cfg = base(1, vec![one_consumer()]);
        let multi = simulate_multi(&cfg, &decay);
        let des = crate::simulate(
            &crate::SimConfig {
                t_train: cfg.t_train,
                t_infer: 0.01,
                costs: costs(),
                s_iter: cfg.s_iter,
                e_iter: cfg.e_iter,
                schedule: cfg.schedule.clone(),
                total_infers: 2_000,
                discovery: Discovery::Push,
            },
            &decay,
        );
        assert!(
            (multi.per_consumer[0].cil - des.cil).abs() < 1e-6,
            "multi {} vs des {}",
            multi.per_consumer[0].cil,
            des.cil
        );
        assert!((multi.training_overhead_per_rank - des.training_overhead).abs() < 1e-9);
    }

    #[test]
    fn more_ranks_shrink_stall_and_finish_earlier() {
        let c1 = simulate_multi(&base(1, vec![one_consumer()]), &decay);
        let c4 = simulate_multi(&base(4, vec![one_consumer()]), &decay);
        assert!((c4.training_overhead_per_rank - c1.training_overhead_per_rank / 4.0).abs() < 1e-9);
        assert!(c4.producers_finished_at < c1.producers_finished_at);
        // Less stall -> earlier staging -> weakly lower CIL.
        assert!(c4.per_consumer[0].cil <= c1.per_consumer[0].cil + 1e-9);
    }

    #[test]
    fn consumers_with_slower_polling_do_worse() {
        let consumers = vec![
            ConsumerSpec {
                t_infer: 0.01,
                total_infers: 2_000,
                discovery: Discovery::Push,
            },
            ConsumerSpec {
                t_infer: 0.01,
                total_infers: 2_000,
                discovery: Discovery::Poll { interval: 0.5 },
            },
            ConsumerSpec {
                t_infer: 0.01,
                total_infers: 2_000,
                discovery: Discovery::Poll { interval: 10.0 },
            },
        ];
        let r = simulate_multi(&base(2, consumers), &decay);
        assert!(r.per_consumer[0].cil <= r.per_consumer[1].cil + 1e-9);
        assert!(r.per_consumer[1].cil < r.per_consumer[2].cil);
        assert!(
            (r.total_cil()
                - (r.per_consumer[0].cil + r.per_consumer[1].cil + r.per_consumer[2].cil))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn heterogeneous_inference_rates_supported() {
        let consumers = vec![
            ConsumerSpec {
                t_infer: 0.005,
                total_infers: 4_000,
                discovery: Discovery::Push,
            },
            ConsumerSpec {
                t_infer: 0.02,
                total_infers: 1_000,
                discovery: Discovery::Push,
            },
        ];
        let r = simulate_multi(&base(1, consumers), &decay);
        assert_eq!(r.per_consumer[0].served, 4_000);
        assert_eq!(r.per_consumer[1].served, 1_000);
        // Both span the same wall time (20 s), so their *mean* loss per
        // inference should be close.
        let m0 = r.per_consumer[0].cil / 4_000.0;
        let m1 = r.per_consumer[1].cil / 1_000.0;
        assert!((m0 - m1).abs() < 0.05, "{m0} vs {m1}");
    }

    #[test]
    fn zero_consumers_is_a_pure_producer_run() {
        let r = simulate_multi(&base(2, vec![]), &decay);
        assert!(r.per_consumer.is_empty());
        assert!(r.producers_finished_at > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one producer")]
    fn zero_producers_rejected() {
        simulate_multi(&base(0, vec![]), &decay);
    }
}
