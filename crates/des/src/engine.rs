//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by virtual time with a FIFO tie-break (insertion
//! sequence), so simulations are fully deterministic regardless of how many
//! events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual time (seconds).
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// Virtual time the event fires.
    pub at: f64,
    seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // breaking ties by insertion order.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute virtual time `at`. Scheduling in the
    /// past is clamped to `now` (events cannot rewrite history).
    pub fn schedule(&mut self, at: f64, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let item = self.heap.pop()?;
        self.now = item.at;
        Some(item)
    }

    /// Events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "late");
        q.pop();
        q.schedule(1.0, "early?");
        let s = q.pop().unwrap();
        assert_eq!(s.at, 10.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_in(3.0, "second");
        assert_eq!(q.pop().unwrap().at, 5.0);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
