//! # viper-dnn
//!
//! A from-scratch DNN training and inference library.
//!
//! The Viper paper trains CANDLE NT3/TC1 (1-D convolutional classifiers)
//! and PtychoNN (an encoder/decoder regressor) with TensorFlow and attaches
//! a checkpoint callback to `model.fit()`. This crate supplies the same
//! integration surface in pure Rust: sequential models built from layers,
//! losses, SGD/Adam optimizers, a Keras-style [`Model::fit`] loop with a
//! [`Callback`] list, and named-weight export/import (the unit Viper
//! checkpoints and transfers).
//!
//! ## Example
//!
//! ```
//! use viper_dnn::{layers, losses, optimizers, Dataset, FitConfig, Model};
//! use viper_tensor::Tensor;
//!
//! // Tiny binary classifier on 2-D points.
//! let mut model = Model::new("demo", 7)
//!     .push(layers::Dense::new(2, 8))
//!     .push(layers::ReLU::new())
//!     .push(layers::Dense::new(8, 2));
//!
//! let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
//! let y = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0], &[4, 2]).unwrap();
//! let data = Dataset::new(x, y).unwrap();
//!
//! let mut opt = optimizers::Sgd::new(0.1);
//! let loss = losses::SoftmaxCrossEntropy;
//! let report = model
//!     .fit(&data, &loss, &mut opt, &FitConfig { epochs: 5, batch_size: 4, shuffle: false }, &mut [])
//!     .unwrap();
//! assert_eq!(report.iterations, 5);
//! ```

#![warn(missing_docs)]

mod callback;
mod dataset;
mod error;
mod model;

pub mod layers;
pub mod losses;
pub mod metrics;
pub mod optimizers;

pub use callback::{Callback, LossRecorder, TrainEvent};
pub use dataset::Dataset;
pub use error::{DnnError, Result};
pub use model::{FitConfig, FitReport, Model};

/// A layer in a sequential model.
///
/// Layers own their parameters, parameter gradients, and whatever forward
/// activations the backward pass needs.
pub trait Layer: Send {
    /// Layer name (unique within a model after [`Model::push`]).
    fn name(&self) -> &str;

    /// Override the layer name (called by the model to disambiguate).
    fn set_name(&mut self, name: String);

    /// Forward pass. `training` enables stochastic behaviour (dropout).
    fn forward(
        &mut self,
        input: &viper_tensor::Tensor,
        training: bool,
    ) -> Result<viper_tensor::Tensor>;

    /// Backward pass: consume `d(loss)/d(output)`, accumulate parameter
    /// gradients, and return `d(loss)/d(input)`.
    fn backward(&mut self, grad_out: &viper_tensor::Tensor) -> Result<viper_tensor::Tensor>;

    /// Visit `(suffix, param, grad)` triples for the optimizer. The default
    /// is a parameterless layer.
    fn visit_params(
        &mut self,
        _f: &mut dyn FnMut(&str, &mut viper_tensor::Tensor, &viper_tensor::Tensor),
    ) {
    }

    /// Named parameter snapshots, `(suffix, tensor)`. Default: none.
    fn export_params(&self) -> Vec<(String, viper_tensor::Tensor)> {
        Vec::new()
    }

    /// Load parameters exported by [`Layer::export_params`] (same order and
    /// shapes). Default: accepts an empty list.
    fn import_params(&mut self, params: &[(String, viper_tensor::Tensor)]) -> Result<()> {
        if params.is_empty() {
            Ok(())
        } else {
            Err(DnnError::WeightMismatch(format!(
                "layer {} has no parameters but {} were supplied",
                self.name(),
                params.len()
            )))
        }
    }

    /// Zero the accumulated gradients. Default: nothing to zero.
    fn zero_grads(&mut self) {}
}

/// A training loss.
pub trait Loss: Send + Sync {
    /// Loss name (e.g. `"softmax_cross_entropy"`).
    fn name(&self) -> &'static str;

    /// Mean loss over the batch.
    fn forward(&self, pred: &viper_tensor::Tensor, target: &viper_tensor::Tensor) -> Result<f64>;

    /// `d(mean loss)/d(pred)`.
    fn backward(
        &self,
        pred: &viper_tensor::Tensor,
        target: &viper_tensor::Tensor,
    ) -> Result<viper_tensor::Tensor>;
}

/// A gradient-descent optimizer.
pub trait Optimizer: Send {
    /// Optimizer name.
    fn name(&self) -> &'static str;

    /// Begin an optimization step (advance internal clocks).
    fn begin_step(&mut self) {}

    /// Update one parameter in place. `key` identifies the parameter
    /// (stable across steps) so stateful optimizers can track per-parameter
    /// moments.
    fn update(&mut self, key: &str, param: &mut viper_tensor::Tensor, grad: &viper_tensor::Tensor);

    /// Snapshot the optimizer's internal state as named tensors, so a
    /// checkpoint can resume training bit-exactly (momentum buffers, Adam
    /// moments, step counters). Stateless optimizers return nothing.
    fn export_state(&self) -> Vec<(String, viper_tensor::Tensor)> {
        Vec::new()
    }

    /// Restore state exported by [`Optimizer::export_state`].
    fn import_state(&mut self, _state: &[(String, viper_tensor::Tensor)]) -> Result<()> {
        Ok(())
    }
}
