//! Evaluation metrics.

use crate::{DnnError, Result};
use viper_tensor::Tensor;

/// Classification accuracy of `[batch, classes]` predictions against
/// one-hot `[batch, classes]` targets.
pub fn accuracy(pred: &Tensor, target: &Tensor) -> Result<f64> {
    if pred.dims() != target.dims() || pred.dims().len() != 2 {
        return Err(DnnError::ShapeMismatch(format!(
            "accuracy expects matching [batch, classes], got {:?} vs {:?}",
            pred.dims(),
            target.dims()
        )));
    }
    let (rows, cols) = (pred.dims()[0], pred.dims()[1]);
    if rows == 0 {
        return Ok(0.0);
    }
    let p = pred.as_slice();
    let t = target.as_slice();
    let mut correct = 0usize;
    for r in 0..rows {
        let row_argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        if row_argmax(&p[r * cols..(r + 1) * cols]) == row_argmax(&t[r * cols..(r + 1) * cols]) {
            correct += 1;
        }
    }
    Ok(correct as f64 / rows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero_accuracy() {
        let pred = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        let right = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let wrong = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&pred, &right).unwrap(), 1.0);
        assert_eq!(accuracy(&pred, &wrong).unwrap(), 0.0);
    }

    #[test]
    fn partial_accuracy() {
        let pred = Tensor::from_vec(vec![0.9, 0.1, 0.9, 0.1], &[2, 2]).unwrap();
        let target = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(accuracy(&pred, &target).unwrap(), 0.5);
    }

    #[test]
    fn empty_batch_is_zero() {
        let pred = Tensor::zeros(&[0, 3]);
        let target = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&pred, &target).unwrap(), 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(accuracy(&a, &b).is_err());
    }
}
