//! Training callbacks — the hook Viper's `CheckpointCallback` plugs into,
//! mirroring Keras' `model.fit(callbacks=[...])`.

use crate::Model;

/// What the training loop reports after each iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainEvent {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Global 1-based iteration count (across epochs).
    pub iteration: u64,
    /// Training loss of the just-finished batch.
    pub batch_loss: f64,
}

/// Observer of the training loop.
///
/// All hooks receive a shared reference to the model so they can snapshot
/// weights (checkpointing) without being able to corrupt training state.
pub trait Callback {
    /// Called once before the first iteration.
    fn on_train_begin(&mut self, _model: &Model) {}

    /// Called after every training iteration (batch).
    fn on_iteration_end(&mut self, _event: &TrainEvent, _model: &Model) {}

    /// Called after each epoch with the epoch's mean training loss.
    fn on_epoch_end(&mut self, _epoch: usize, _mean_loss: f64, _model: &Model) {}

    /// Called once after the last iteration.
    fn on_train_end(&mut self, _model: &Model) {}
}

/// A callback that records every iteration's loss (useful for fitting the
/// warm-up learning curve).
#[derive(Debug, Default)]
pub struct LossRecorder {
    /// Per-iteration batch losses, in order.
    pub losses: Vec<f64>,
    /// Per-epoch mean losses.
    pub epoch_losses: Vec<f64>,
}

impl LossRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Callback for LossRecorder {
    fn on_iteration_end(&mut self, event: &TrainEvent, _model: &Model) {
        self.losses.push(event.batch_loss);
    }

    fn on_epoch_end(&mut self, _epoch: usize, mean_loss: f64, _model: &Model) {
        self.epoch_losses.push(mean_loss);
    }
}
