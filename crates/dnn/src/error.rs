//! Error types for the DNN library.

use viper_tensor::TensorError;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DnnError>;

/// Errors from model construction, training, and weight exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// An underlying tensor kernel rejected its inputs.
    Tensor(TensorError),
    /// Input/target shapes don't match what the model or loss expects.
    ShapeMismatch(String),
    /// Imported weights don't match the model architecture.
    WeightMismatch(String),
    /// Invalid training configuration (zero batch size, empty dataset, ...).
    InvalidConfig(String),
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

impl std::fmt::Display for DnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DnnError::WeightMismatch(m) => write!(f, "weight mismatch: {m}"),
            DnnError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::InvalidArgument("x".into());
        let de: DnnError = te.clone().into();
        assert_eq!(de, DnnError::Tensor(te));
    }

    #[test]
    fn display_variants() {
        assert!(DnnError::ShapeMismatch("a".into())
            .to_string()
            .contains("shape"));
        assert!(DnnError::WeightMismatch("b".into())
            .to_string()
            .contains("weight"));
        assert!(DnnError::InvalidConfig("c".into())
            .to_string()
            .contains("config"));
    }
}
