//! Inverted dropout.

use crate::{DnnError, Layer, Result};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use viper_tensor::Tensor;

/// Inverted dropout: during training each unit is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`; at inference it is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    name: String,
    rate: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// A dropout layer with drop probability `rate` in `[0, 1)`.
    pub fn new(rate: f32) -> Self {
        Self::with_seed(rate, 0xd20)
    }

    /// Seeded variant for reproducible training runs.
    pub fn with_seed(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout {
            name: "dropout".into(),
            rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let data: Vec<f32> = input
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Ok(Tensor::from_vec(data, input.dims())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            None => Ok(grad_out.clone()),
            Some(mask) => {
                if mask.len() != grad_out.len() {
                    return Err(DnnError::ShapeMismatch("dropout grad length".into()));
                }
                let data: Vec<f32> = grad_out
                    .as_slice()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Ok(Tensor::from_vec(data, grad_out.dims())?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_inference() {
        let mut d = Dropout::new(0.5);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn drops_roughly_rate_fraction() {
        let mut d = Dropout::with_seed(0.3, 42);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true).unwrap();
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = dropped as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped {frac}");
        // Survivors are scaled to preserve the expectation.
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-6);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::with_seed(0.5, 7);
        let x = Tensor::ones(&[1000]);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::ones(&[1000])).unwrap();
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv == &0.0, gv == &0.0, "mask must match between passes");
        }
    }

    #[test]
    fn zero_rate_is_identity_even_training() {
        let mut d = Dropout::new(0.0);
        let x = Tensor::ones(&[10]);
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn invalid_rate_panics() {
        Dropout::new(1.0);
    }
}
