//! Flatten layer: collapse all trailing dimensions into one.

use crate::{DnnError, Layer, Result};
use viper_tensor::Tensor;

/// `[batch, d1, d2, ...] -> [batch, d1*d2*...]`.
#[derive(Debug, Default)]
pub struct Flatten {
    name: String,
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// A flatten layer.
    pub fn new() -> Self {
        Flatten {
            name: "flatten".into(),
            input_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(DnnError::ShapeMismatch(
                "flatten needs at least rank 1".into(),
            ));
        }
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        self.input_dims = Some(dims.to_vec());
        Ok(input.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        Ok(grad_out.reshape(dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]).unwrap();
        let y = f.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.dims(), &[2, 3, 4]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn rank1_passthrough() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[5]);
        let y = f.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[5, 1]);
    }
}
