//! Neural-network layers.
//!
//! Everything the CANDLE NT3/TC1 and PtychoNN reproductions need: dense,
//! 1-D convolution, max-pooling, flatten, activations, and dropout.

mod activations;
mod batchnorm;
mod conv;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activations::{ReLU, Sigmoid, Softmax, Tanh};
pub use batchnorm::BatchNorm;
pub use conv::Conv1D;
pub use conv2d::{Conv2D, MaxPool2D};
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool1D;
