//! 2-D convolution layer (for the 2-D PtychoNN variant).

use crate::{DnnError, Layer, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use viper_tensor::{ops::conv2d, Initializer, Tensor};

/// Valid-padding 2-D convolution, channels-last.
///
/// Input `[batch, h, w, in_ch]`, kernel `[kh, kw, in_ch, out_ch]`, bias
/// `[out_ch]`, output `[batch, oh, ow, out_ch]`.
#[derive(Debug)]
pub struct Conv2D {
    name: String,
    kernel: Tensor,
    bias: Tensor,
    grad_kernel: Tensor,
    grad_bias: Tensor,
    stride: (usize, usize),
    cached_input: Option<Tensor>,
    trainable: bool,
}

impl Conv2D {
    /// A conv layer with He-normal weights (fixed seed; see
    /// [`Conv2D::with_seed`]).
    pub fn new(kh: usize, kw: usize, in_ch: usize, out_ch: usize, stride: (usize, usize)) -> Self {
        Self::with_seed(kh, kw, in_ch, out_ch, stride, 0x2dc0de)
    }

    /// A conv layer with seeded He-normal initialisation.
    pub fn with_seed(
        kh: usize,
        kw: usize,
        in_ch: usize,
        out_ch: usize,
        stride: (usize, usize),
        seed: u64,
    ) -> Self {
        assert!(stride.0 >= 1 && stride.1 >= 1, "strides must be >= 1");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Conv2D {
            name: "conv2d".into(),
            kernel: Tensor::init(&[kh, kw, in_ch, out_ch], Initializer::HeNormal, &mut rng),
            bias: Tensor::zeros(&[out_ch]),
            grad_kernel: Tensor::zeros(&[kh, kw, in_ch, out_ch]),
            grad_bias: Tensor::zeros(&[out_ch]),
            stride,
            cached_input: None,
            trainable: true,
        }
    }

    /// Freeze the layer (transfer learning). Builder-style.
    pub fn frozen(mut self) -> Self {
        self.trainable = false;
        self
    }

    fn ksize(&self) -> (usize, usize) {
        (self.kernel.dims()[0], self.kernel.dims()[1])
    }
}

impl Layer for Conv2D {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let mut out = conv2d::conv2d(input, &self.kernel, self.stride)?;
        let oc = *out.dims().last().expect("rank 4 output");
        let positions = out.len() / oc;
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for pos in 0..positions {
            for (c, &bv) in bias.iter().enumerate() {
                data[pos * oc + c] += bv;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        let gk = conv2d::conv2d_grad_kernel(x, grad_out, self.ksize(), self.stride)?;
        self.grad_kernel.axpy(1.0, &gk)?;
        let oc = *grad_out.dims().last().expect("rank 4 grad");
        let positions = grad_out.len() / oc;
        let g = grad_out.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for pos in 0..positions {
            for (c, gbv) in gb.iter_mut().enumerate() {
                *gbv += g[pos * oc + c];
            }
        }
        Ok(conv2d::conv2d_grad_input(
            &self.kernel,
            grad_out,
            (x.dims()[1], x.dims()[2]),
            self.stride,
        )?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        if !self.trainable {
            return;
        }
        f("kernel", &mut self.kernel, &self.grad_kernel);
        f("bias", &mut self.bias, &self.grad_bias);
    }

    fn export_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("kernel".into(), self.kernel.clone()),
            ("bias".into(), self.bias.clone()),
        ]
    }

    fn import_params(&mut self, params: &[(String, Tensor)]) -> Result<()> {
        for (suffix, tensor) in params {
            let target = match suffix.as_str() {
                "kernel" => &mut self.kernel,
                "bias" => &mut self.bias,
                other => {
                    return Err(DnnError::WeightMismatch(format!(
                        "conv2d {}: unknown parameter {other}",
                        self.name
                    )))
                }
            };
            if target.dims() != tensor.dims() {
                return Err(DnnError::WeightMismatch(format!(
                    "conv2d {}: {suffix} shape {:?} != {:?}",
                    self.name,
                    tensor.dims(),
                    target.dims()
                )));
            }
            *target = tensor.clone();
        }
        Ok(())
    }

    fn zero_grads(&mut self) {
        self.grad_kernel.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }
}

/// 2-D max pooling over the spatial dimensions (channels-last).
#[derive(Debug)]
pub struct MaxPool2D {
    name: String,
    window: (usize, usize),
    stride: (usize, usize),
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool2D {
    /// A pool layer with the given window and stride.
    pub fn new(window: (usize, usize), stride: (usize, usize)) -> Self {
        assert!(
            window.0 >= 1 && window.1 >= 1 && stride.0 >= 1 && stride.1 >= 1,
            "window and stride must be >= 1"
        );
        MaxPool2D {
            name: "maxpool2d".into(),
            window,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2D {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let (out, indices) = conv2d::maxpool2d(input, self.window, self.stride)?;
        self.cache = Some((indices, input.dims().to_vec()));
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (indices, input_dims) = self
            .cache
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        Ok(viper_tensor::ops::conv::maxpool1d_backward(
            grad_out, indices, input_dims,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut c = Conv2D::new(3, 3, 1, 8, (1, 1));
        let x = Tensor::ones(&[2, 8, 8, 1]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 6, 6, 8]);
        let mut p = MaxPool2D::new((2, 2), (2, 2));
        let z = p.forward(&y, false).unwrap();
        assert_eq!(z.dims(), &[2, 3, 3, 8]);
    }

    #[test]
    fn gradient_check_via_layer() {
        let mut c = Conv2D::with_seed(2, 2, 1, 2, (1, 1), 99);
        let data: Vec<f32> = (0..16).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let x = Tensor::from_vec(data, &[1, 4, 4, 1]).unwrap();
        let y = c.forward(&x, true).unwrap();
        let gy = Tensor::ones(y.dims());
        let gx = c.backward(&gy).unwrap();
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = c.forward(&xp, true).unwrap().sum();
            let lm = c.forward(&xm, true).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[i] - num).abs() < 1e-2, "gx[{i}]");
        }
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let mut p = MaxPool2D::new((2, 2), (2, 2));
        let x = Tensor::from_vec(
            vec![
                1.0, 9.0, 2.0, 3.0, 4.0, 5.0, 8.0, 6.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
            ],
            &[1, 4, 4, 1],
        )
        .unwrap();
        p.forward(&x, true).unwrap();
        let g = p
            .backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2, 1]).unwrap())
            .unwrap();
        assert_eq!(g.dims(), &[1, 4, 4, 1]);
        // Gradient mass is conserved.
        assert!((g.sum() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn frozen_conv2d_skips_optimizer() {
        let mut c = Conv2D::new(2, 2, 1, 1, (1, 1)).frozen();
        let mut visited = 0;
        c.visit_params(&mut |_, _, _| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn export_import_roundtrip() {
        let a = Conv2D::with_seed(3, 3, 2, 4, (1, 1), 5);
        let mut b = Conv2D::with_seed(3, 3, 2, 4, (1, 1), 6);
        b.import_params(&a.export_params()).unwrap();
        assert_eq!(a.export_params(), b.export_params());
        assert!(b
            .import_params(&[("kernel".into(), Tensor::zeros(&[1, 1, 1, 1]))])
            .is_err());
    }
}
