//! Max-pooling layer.

use crate::{DnnError, Layer, Result};
use viper_tensor::{ops::conv, Tensor};

/// 1-D max pooling over the length dimension (channels-last).
#[derive(Debug)]
pub struct MaxPool1D {
    name: String,
    window: usize,
    stride: usize,
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool1D {
    /// A pool layer with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window >= 1 && stride >= 1, "window and stride must be >= 1");
        MaxPool1D {
            name: "maxpool1d".into(),
            window,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool1D {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let (out, indices) = conv::maxpool1d(input, self.window, self.stride)?;
        self.cache = Some((indices, input.dims().to_vec()));
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (indices, input_dims) = self
            .cache
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        Ok(conv::maxpool1d_backward(grad_out, indices, input_dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_halves_length() {
        let mut p = MaxPool1D::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0], &[1, 4, 1]).unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 5.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool1D::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0], &[1, 4, 1]).unwrap();
        p.forward(&x, true).unwrap();
        let g = p
            .backward(&Tensor::from_vec(vec![10.0, 20.0], &[1, 2, 1]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 10.0, 0.0, 20.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut p = MaxPool1D::new(2, 2);
        assert!(p.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_window_panics() {
        MaxPool1D::new(0, 1);
    }
}
