//! Activation layers: ReLU, Sigmoid, Tanh, Softmax.

use crate::{DnnError, Layer, Result};
use viper_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct ReLU {
    name: String,
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// A ReLU layer.
    pub fn new() -> Self {
        ReLU {
            name: "relu".into(),
            mask: None,
        }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        if mask.len() != grad_out.len() {
            return Err(DnnError::ShapeMismatch("relu grad length".into()));
        }
        let data: Vec<f32> = grad_out
            .as_slice()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(data, grad_out.dims())?)
    }
}

/// Logistic sigmoid.
#[derive(Debug, Default)]
pub struct Sigmoid {
    name: String,
    output: Option<Tensor>,
}

impl Sigmoid {
    /// A sigmoid layer.
    pub fn new() -> Self {
        Sigmoid {
            name: "sigmoid".into(),
            output: None,
        }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .output
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        Ok(grad_out.zip(y, |g, y| g * y * (1.0 - y))?)
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    name: String,
    output: Option<Tensor>,
}

impl Tanh {
    /// A tanh layer.
    pub fn new() -> Self {
        Tanh {
            name: "tanh".into(),
            output: None,
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        self.output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .output
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        Ok(grad_out.zip(y, |g, y| g * (1.0 - y * y))?)
    }
}

/// Row-wise softmax over the last dimension of a 2-D tensor.
///
/// For training a classifier prefer
/// [`crate::losses::SoftmaxCrossEntropy`], which fuses softmax into the
/// loss gradient; this layer is for serving probabilities at inference.
#[derive(Debug, Default)]
pub struct Softmax {
    name: String,
    output: Option<Tensor>,
}

impl Softmax {
    /// A softmax layer.
    pub fn new() -> Self {
        Softmax {
            name: "softmax".into(),
            output: None,
        }
    }

    /// Row-wise softmax of a `[batch, classes]` tensor.
    pub fn apply(input: &Tensor) -> Result<Tensor> {
        if input.dims().len() != 2 {
            return Err(DnnError::ShapeMismatch(format!(
                "softmax expects rank 2, got {:?}",
                input.dims()
            )));
        }
        let (rows, cols) = (input.dims()[0], input.dims()[1]);
        let src = input.as_slice();
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &v) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                let e = (v - max).exp();
                *o = e;
                denom += e;
            }
            for o in &mut out[r * cols..(r + 1) * cols] {
                *o /= denom;
            }
        }
        Ok(Tensor::from_vec(out, &[rows, cols])?)
    }
}

impl Layer for Softmax {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let out = Softmax::apply(input)?;
        self.output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .output
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        // dx_i = y_i * (g_i - sum_j g_j y_j), row-wise.
        let (rows, cols) = (y.dims()[0], y.dims()[1]);
        let yv = y.as_slice();
        let gv = grad_out.as_slice();
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let ys = &yv[r * cols..(r + 1) * cols];
            let gs = &gv[r * cols..(r + 1) * cols];
            let dot: f32 = ys.iter().zip(gs).map(|(&a, &b)| a * b).sum();
            for ((o, &yi), &gi) in out[r * cols..(r + 1) * cols].iter_mut().zip(ys).zip(gs) {
                *o = yi * (gi - dot);
            }
        }
        Ok(Tensor::from_vec(out, y.dims())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut l = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = l.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = l.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut l = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]).unwrap();
        let y = l.forward(&x, true).unwrap();
        assert!(y.as_slice()[0] < 0.001);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.999);
        let g = l.backward(&Tensor::ones(&[3])).unwrap();
        // Peak derivative 0.25 at x = 0.
        assert!((g.as_slice()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut l = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.8], &[2]).unwrap();
        l.forward(&x, true).unwrap();
        let g = l.backward(&Tensor::ones(&[2])).unwrap();
        for (i, &xi) in x.as_slice().iter().enumerate() {
            let analytic = 1.0 - xi.tanh() * xi.tanh();
            assert!((g.as_slice()[i] - analytic).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let y = Softmax::apply(&x).unwrap();
        for r in 0..2 {
            let s: f32 = y.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: bigger logit, bigger probability.
        assert!(y.as_slice()[2] > y.as_slice()[1]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let y = Softmax::apply(&x).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backward_before_forward_fails() {
        assert!(ReLU::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Softmax::new().backward(&Tensor::ones(&[1, 1])).is_err());
    }
}
