//! Fully-connected layer.

use crate::{DnnError, Layer, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use viper_tensor::{Initializer, Tensor};

/// `y = x W + b` with `x: [batch, in]`, `W: [in, out]`, `b: [out]`.
#[derive(Debug)]
pub struct Dense {
    name: String,
    w: Tensor,
    b: Tensor,
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
    trainable: bool,
}

impl Dense {
    /// A dense layer with Glorot-uniform weights (seed fixed per shape for
    /// reproducibility; use [`Dense::with_seed`] to vary).
    pub fn new(input: usize, output: usize) -> Self {
        Self::with_seed(input, output, 0x5eed)
    }

    /// A dense layer with seeded Glorot-uniform initialisation.
    pub fn with_seed(input: usize, output: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Dense {
            name: "dense".into(),
            w: Tensor::init(&[input, output], Initializer::GlorotUniform, &mut rng),
            b: Tensor::zeros(&[output]),
            grad_w: Tensor::zeros(&[input, output]),
            grad_b: Tensor::zeros(&[output]),
            cached_input: None,
            trainable: true,
        }
    }

    /// Freeze the layer: the optimizer skips its parameters (transfer
    /// learning). Builder-style.
    pub fn frozen(mut self) -> Self {
        self.trainable = false;
        self
    }

    /// Set whether the optimizer updates this layer.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.trainable = trainable;
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.dims()[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.dims()[1]
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        if input.dims().len() != 2 || input.dims()[1] != self.input_dim() {
            return Err(DnnError::ShapeMismatch(format!(
                "dense {} expects [batch, {}], got {:?}",
                self.name,
                self.input_dim(),
                input.dims()
            )));
        }
        let mut out = input.matmul(&self.w)?;
        // Broadcast-add the bias across rows.
        let (batch, width) = (out.dims()[0], out.dims()[1]);
        let bias = self.b.as_slice();
        let data = out.as_mut_slice();
        for r in 0..batch {
            for (c, &bv) in bias.iter().enumerate() {
                data[r * width + c] += bv;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        // dW = xᵀ g, accumulated.
        self.grad_w.axpy(1.0, &x.transpose()?.matmul(grad_out)?)?;
        // db = column sums of g.
        let (batch, width) = (grad_out.dims()[0], grad_out.dims()[1]);
        let g = grad_out.as_slice();
        let gb = self.grad_b.as_mut_slice();
        for r in 0..batch {
            for (c, gbv) in gb.iter_mut().enumerate() {
                *gbv += g[r * width + c];
            }
        }
        // dx = g Wᵀ.
        Ok(grad_out.matmul(&self.w.transpose()?)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        if !self.trainable {
            return;
        }
        f("kernel", &mut self.w, &self.grad_w);
        f("bias", &mut self.b, &self.grad_b);
    }

    fn export_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("kernel".into(), self.w.clone()),
            ("bias".into(), self.b.clone()),
        ]
    }

    fn import_params(&mut self, params: &[(String, Tensor)]) -> Result<()> {
        for (suffix, tensor) in params {
            let target = match suffix.as_str() {
                "kernel" => &mut self.w,
                "bias" => &mut self.b,
                other => {
                    return Err(DnnError::WeightMismatch(format!(
                        "dense {}: unknown parameter {other}",
                        self.name
                    )))
                }
            };
            if target.dims() != tensor.dims() {
                return Err(DnnError::WeightMismatch(format!(
                    "dense {}: {suffix} shape {:?} != {:?}",
                    self.name,
                    tensor.dims(),
                    target.dims()
                )));
            }
            *target = tensor.clone();
        }
        Ok(())
    }

    fn zero_grads(&mut self) {
        self.grad_w.map_inplace(|_| 0.0);
        self.grad_b.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut d = Dense::new(2, 2);
        d.import_params(&[
            (
                "kernel".into(),
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap(),
            ),
            (
                "bias".into(),
                Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap(),
            ),
        ])
        .unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut d = Dense::new(3, 2);
        let x = Tensor::zeros(&[1, 4]);
        assert!(d.forward(&x, false).is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn gradients_match_finite_differences() {
        let mut d = Dense::with_seed(3, 2, 7);
        let x = Tensor::from_vec(vec![0.5, -0.2, 0.9, 0.1, 0.4, -0.7], &[2, 3]).unwrap();
        // Loss = sum of outputs.
        let y = d.forward(&x, true).unwrap();
        let gy = Tensor::ones(y.dims());
        let gx = d.backward(&gy).unwrap();

        let eps = 1e-3f32;
        // Check dL/dx.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = d.forward(&xp, true).unwrap().sum();
            let lm = d.forward(&xm, true).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[i] - num).abs() < 1e-2, "gx[{i}]");
        }
        // Check dL/dW via export/import perturbation.
        let params = d.export_params();
        let w = params[0].1.clone();
        let mut grads = Vec::new();
        d.visit_params(&mut |suffix, _, g| {
            if suffix == "kernel" {
                grads = g.as_slice().to_vec();
            }
        });
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            d.import_params(&[("kernel".into(), wp)]).unwrap();
            let lp = d.forward(&x, true).unwrap().sum();
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            d.import_params(&[("kernel".into(), wm)]).unwrap();
            let lm = d.forward(&x, true).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (grads[i] - num).abs() < 1e-2,
                "gw[{i}]: {} vs {num}",
                grads[i]
            );
        }
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut d = Dense::with_seed(2, 2, 1);
        let x = Tensor::ones(&[1, 2]);
        let gy = Tensor::ones(&[1, 2]);
        d.forward(&x, true).unwrap();
        d.backward(&gy).unwrap();
        let mut first = Vec::new();
        d.visit_params(&mut |s, _, g| {
            if s == "kernel" {
                first = g.as_slice().to_vec();
            }
        });
        d.forward(&x, true).unwrap();
        d.backward(&gy).unwrap();
        d.visit_params(&mut |s, _, g| {
            if s == "kernel" {
                for (a, b) in g.as_slice().iter().zip(&first) {
                    assert!((a - 2.0 * b).abs() < 1e-5);
                }
            }
        });
        d.zero_grads();
        d.visit_params(&mut |_, _, g| assert!(g.as_slice().iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn import_rejects_bad_shapes_and_names() {
        let mut d = Dense::new(2, 2);
        assert!(d
            .import_params(&[("kernel".into(), Tensor::zeros(&[3, 3]))])
            .is_err());
        assert!(d
            .import_params(&[("mystery".into(), Tensor::zeros(&[2, 2]))])
            .is_err());
    }

    #[test]
    fn export_import_roundtrip() {
        let d = Dense::with_seed(4, 3, 99);
        let mut d2 = Dense::with_seed(4, 3, 100);
        d2.import_params(&d.export_params()).unwrap();
        assert_eq!(d.export_params(), d2.export_params());
    }
}

#[cfg(test)]
mod freeze_tests {
    use super::*;
    use crate::Layer;

    #[test]
    fn frozen_layer_params_never_update() {
        let mut d = Dense::with_seed(2, 2, 3).frozen();
        let before = d.export_params();
        let x = Tensor::ones(&[1, 2]);
        d.forward(&x, true).unwrap();
        d.backward(&Tensor::ones(&[1, 2])).unwrap();
        let mut visited = 0;
        d.visit_params(&mut |_, _, _| visited += 1);
        assert_eq!(visited, 0, "optimizer must not see frozen params");
        assert_eq!(d.export_params(), before);
    }

    #[test]
    fn unfreeze_restores_training() {
        let mut d = Dense::with_seed(2, 2, 3).frozen();
        d.set_trainable(true);
        let mut visited = 0;
        d.visit_params(&mut |_, _, _| visited += 1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn frozen_layer_still_propagates_gradients() {
        // Freezing stops updates but not backprop through the layer.
        let mut d = Dense::with_seed(3, 2, 4).frozen();
        let x = Tensor::ones(&[1, 3]);
        d.forward(&x, true).unwrap();
        let gx = d.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(gx.dims(), &[1, 3]);
        assert!(gx.as_slice().iter().any(|&v| v != 0.0));
    }
}
