//! 1-D convolution layer (the workhorse of CANDLE NT3/TC1 and PtychoNN).

use crate::{DnnError, Layer, Result};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use viper_tensor::{ops::conv, Initializer, Tensor};

/// Valid-padding 1-D convolution, channels-last.
///
/// Input `[batch, length, in_ch]`, kernel `[k, in_ch, out_ch]`, bias
/// `[out_ch]`, output `[batch, out_len, out_ch]`.
#[derive(Debug)]
pub struct Conv1D {
    name: String,
    kernel: Tensor,
    bias: Tensor,
    grad_kernel: Tensor,
    grad_bias: Tensor,
    stride: usize,
    cached_input: Option<Tensor>,
    trainable: bool,
}

impl Conv1D {
    /// A conv layer with He-normal weights (fixed seed; see
    /// [`Conv1D::with_seed`]).
    pub fn new(width: usize, in_ch: usize, out_ch: usize, stride: usize) -> Self {
        Self::with_seed(width, in_ch, out_ch, stride, 0xc0de)
    }

    /// A conv layer with seeded He-normal initialisation.
    pub fn with_seed(width: usize, in_ch: usize, out_ch: usize, stride: usize, seed: u64) -> Self {
        assert!(stride >= 1, "stride must be >= 1");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Conv1D {
            name: "conv1d".into(),
            kernel: Tensor::init(&[width, in_ch, out_ch], Initializer::HeNormal, &mut rng),
            bias: Tensor::zeros(&[out_ch]),
            grad_kernel: Tensor::zeros(&[width, in_ch, out_ch]),
            grad_bias: Tensor::zeros(&[out_ch]),
            stride,
            cached_input: None,
            trainable: true,
        }
    }

    /// Freeze the layer: the optimizer skips its parameters (transfer
    /// learning). Builder-style.
    pub fn frozen(mut self) -> Self {
        self.trainable = false;
        self
    }

    /// Set whether the optimizer updates this layer.
    pub fn set_trainable(&mut self, trainable: bool) {
        self.trainable = trainable;
    }

    /// Kernel width.
    pub fn width(&self) -> usize {
        self.kernel.dims()[0]
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.kernel.dims()[2]
    }
}

impl Layer for Conv1D {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let mut out = conv::conv1d(input, &self.kernel, self.stride)?;
        let (batch, olen, oc) = (out.dims()[0], out.dims()[1], out.dims()[2]);
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for pos in 0..batch * olen {
            for (c, &bv) in bias.iter().enumerate() {
                data[pos * oc + c] += bv;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before forward".into()))?;
        let gk = conv::conv1d_grad_kernel(x, grad_out, self.width(), self.stride)?;
        self.grad_kernel.axpy(1.0, &gk)?;
        // Bias gradient: sum over batch and positions.
        let (batch, olen, oc) = (grad_out.dims()[0], grad_out.dims()[1], grad_out.dims()[2]);
        let g = grad_out.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for pos in 0..batch * olen {
            for (c, gbv) in gb.iter_mut().enumerate() {
                *gbv += g[pos * oc + c];
            }
        }
        Ok(conv::conv1d_grad_input(
            &self.kernel,
            grad_out,
            x.dims()[1],
            self.stride,
        )?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        if !self.trainable {
            return;
        }
        f("kernel", &mut self.kernel, &self.grad_kernel);
        f("bias", &mut self.bias, &self.grad_bias);
    }

    fn export_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("kernel".into(), self.kernel.clone()),
            ("bias".into(), self.bias.clone()),
        ]
    }

    fn import_params(&mut self, params: &[(String, Tensor)]) -> Result<()> {
        for (suffix, tensor) in params {
            let target = match suffix.as_str() {
                "kernel" => &mut self.kernel,
                "bias" => &mut self.bias,
                other => {
                    return Err(DnnError::WeightMismatch(format!(
                        "conv1d {}: unknown parameter {other}",
                        self.name
                    )))
                }
            };
            if target.dims() != tensor.dims() {
                return Err(DnnError::WeightMismatch(format!(
                    "conv1d {}: {suffix} shape {:?} != {:?}",
                    self.name,
                    tensor.dims(),
                    target.dims()
                )));
            }
            *target = tensor.clone();
        }
        Ok(())
    }

    fn zero_grads(&mut self) {
        self.grad_kernel.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut c = Conv1D::new(3, 2, 4, 1);
        c.import_params(&[
            ("kernel".into(), Tensor::zeros(&[3, 2, 4])),
            (
                "bias".into(),
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap(),
            ),
        ])
        .unwrap();
        let x = Tensor::ones(&[2, 10, 2]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 8, 4]);
        // Zero kernel: output is just the bias, broadcast.
        assert_eq!(&y.as_slice()[..4], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gradient_check() {
        let mut c = Conv1D::with_seed(3, 1, 2, 1, 11);
        let x = Tensor::from_vec(vec![0.4, -0.2, 0.8, 0.3, -0.5, 0.1], &[1, 6, 1]).unwrap();
        let y = c.forward(&x, true).unwrap();
        let gy = Tensor::ones(y.dims());
        let gx = c.backward(&gy).unwrap();
        let eps = 1e-3f32;

        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let lp = c.forward(&xp, true).unwrap().sum();
            let lm = c.forward(&xm, true).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((gx.as_slice()[i] - num).abs() < 1e-2, "gx[{i}]");
        }

        // Bias gradient equals the number of output positions contributing.
        let mut gb = Vec::new();
        c.visit_params(&mut |s, _, g| {
            if s == "bias" {
                gb = g.as_slice().to_vec();
            }
        });
        // 3 forwards ran (1 original + 2x6 perturbed inputs did backward only
        // once); bias grad accumulated only from the single backward: out_len
        // = 4 positions, batch 1.
        assert!(gb.iter().all(|&v| (v - 4.0).abs() < 1e-4), "{gb:?}");
    }

    #[test]
    fn stride_changes_output_length() {
        let mut c = Conv1D::new(2, 1, 1, 2);
        let x = Tensor::ones(&[1, 8, 1]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.dims()[1], 4);
    }

    #[test]
    fn export_import_roundtrip() {
        let a = Conv1D::with_seed(3, 2, 4, 1, 5);
        let mut b = Conv1D::with_seed(3, 2, 4, 1, 6);
        b.import_params(&a.export_params()).unwrap();
        assert_eq!(a.export_params(), b.export_params());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut c = Conv1D::new(2, 1, 1, 1);
        assert!(c.backward(&Tensor::zeros(&[1, 1, 1])).is_err());
    }
}
