//! Batch normalization over the last (feature/channel) dimension.
//!
//! BatchNorm carries *non-trainable running statistics* in addition to its
//! learnable scale/shift — exactly the "other intermediate states" the
//! paper says checkpoints may need to carry (§2). Exporting/importing this
//! layer therefore exercises the checkpoint path for state that no
//! optimizer ever touches.

use crate::{DnnError, Layer, Result};
use viper_tensor::Tensor;

/// Batch normalization over the trailing dimension of a rank-2+ tensor
/// (features of a dense stack or channels of a channels-last conv stack).
#[derive(Debug)]
pub struct BatchNorm {
    name: String,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    /// Forward cache: (normalized input, batch std, centered input).
    cache: Option<(Tensor, Vec<f32>, Tensor)>,
    trainable: bool,
}

impl BatchNorm {
    /// A batch-norm layer over `features` with momentum 0.9 and eps 1e-5.
    pub fn new(features: usize) -> Self {
        BatchNorm {
            name: "batchnorm".into(),
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            grad_gamma: Tensor::zeros(&[features]),
            grad_beta: Tensor::zeros(&[features]),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
            trainable: true,
        }
    }

    /// Freeze scale/shift (running stats still update in training mode).
    pub fn frozen(mut self) -> Self {
        self.trainable = false;
        self
    }

    fn features(&self) -> usize {
        self.gamma.len()
    }

    /// The running mean tracked so far.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The running variance tracked so far.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_name(&mut self, name: String) {
        self.name = name;
    }

    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let c = self.features();
        if input.dims().len() < 2 || *input.dims().last().unwrap() != c {
            return Err(DnnError::ShapeMismatch(format!(
                "batchnorm {} expects trailing dim {c}, got {:?}",
                self.name,
                input.dims()
            )));
        }
        let rows = input.len() / c;
        let x = input.as_slice();

        let (mean, var) = if training {
            let mut mean = vec![0.0f32; c];
            for r in 0..rows {
                for (f, m) in mean.iter_mut().enumerate() {
                    *m += x[r * c + f];
                }
            }
            for m in &mut mean {
                *m /= rows as f32;
            }
            let mut var = vec![0.0f32; c];
            for r in 0..rows {
                for (f, v) in var.iter_mut().enumerate() {
                    let d = x[r * c + f] - mean[f];
                    *v += d * d;
                }
            }
            for v in &mut var {
                *v /= rows as f32;
            }
            // Update running statistics.
            let rm = self.running_mean.as_mut_slice();
            let rv = self.running_var.as_mut_slice();
            for f in 0..c {
                rm[f] = self.momentum * rm[f] + (1.0 - self.momentum) * mean[f];
                rv[f] = self.momentum * rv[f] + (1.0 - self.momentum) * var[f];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let std: Vec<f32> = var.iter().map(|v| (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.as_slice();
        let beta = self.beta.as_slice();
        let mut out = vec![0.0f32; input.len()];
        let mut normalized = vec![0.0f32; input.len()];
        let mut centered = vec![0.0f32; input.len()];
        for r in 0..rows {
            for f in 0..c {
                let i = r * c + f;
                centered[i] = x[i] - mean[f];
                normalized[i] = centered[i] / std[f];
                out[i] = gamma[f] * normalized[i] + beta[f];
            }
        }
        if training {
            self.cache = Some((
                Tensor::from_vec(normalized, input.dims())?,
                std,
                Tensor::from_vec(centered, input.dims())?,
            ));
        } else {
            self.cache = None;
        }
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (normalized, std, _centered) = self
            .cache
            .as_ref()
            .ok_or_else(|| DnnError::InvalidConfig("backward before training forward".into()))?;
        let c = self.features();
        let rows = grad_out.len() / c;
        let g = grad_out.as_slice();
        let xhat = normalized.as_slice();
        let gamma = self.gamma.as_slice();

        // d gamma / d beta.
        {
            let gg = self.grad_gamma.as_mut_slice();
            let gb = self.grad_beta.as_mut_slice();
            for r in 0..rows {
                for f in 0..c {
                    let i = r * c + f;
                    gg[f] += g[i] * xhat[i];
                    gb[f] += g[i];
                }
            }
        }

        // dx via the standard batch-norm backward formula:
        // dx = gamma/std * (g - mean(g) - xhat * mean(g * xhat)).
        let mut mean_g = vec![0.0f32; c];
        let mut mean_gx = vec![0.0f32; c];
        for r in 0..rows {
            for f in 0..c {
                let i = r * c + f;
                mean_g[f] += g[i];
                mean_gx[f] += g[i] * xhat[i];
            }
        }
        for f in 0..c {
            mean_g[f] /= rows as f32;
            mean_gx[f] /= rows as f32;
        }
        let mut gx = vec![0.0f32; grad_out.len()];
        for r in 0..rows {
            for f in 0..c {
                let i = r * c + f;
                gx[i] = gamma[f] / std[f] * (g[i] - mean_g[f] - xhat[i] * mean_gx[f]);
            }
        }
        Ok(Tensor::from_vec(gx, grad_out.dims())?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Tensor, &Tensor)) {
        if !self.trainable {
            return;
        }
        f("gamma", &mut self.gamma, &self.grad_gamma);
        f("beta", &mut self.beta, &self.grad_beta);
    }

    fn export_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("gamma".into(), self.gamma.clone()),
            ("beta".into(), self.beta.clone()),
            ("running_mean".into(), self.running_mean.clone()),
            ("running_var".into(), self.running_var.clone()),
        ]
    }

    fn import_params(&mut self, params: &[(String, Tensor)]) -> Result<()> {
        for (suffix, tensor) in params {
            let target = match suffix.as_str() {
                "gamma" => &mut self.gamma,
                "beta" => &mut self.beta,
                "running_mean" => &mut self.running_mean,
                "running_var" => &mut self.running_var,
                other => {
                    return Err(DnnError::WeightMismatch(format!(
                        "batchnorm {}: unknown parameter {other}",
                        self.name
                    )))
                }
            };
            if target.dims() != tensor.dims() {
                return Err(DnnError::WeightMismatch(format!(
                    "batchnorm {}: {suffix} shape {:?} != {:?}",
                    self.name,
                    tensor.dims(),
                    target.dims()
                )));
            }
            *target = tensor.clone();
        }
        Ok(())
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.map_inplace(|_| 0.0);
        self.grad_beta.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Tensor {
        Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0], &[4, 2]).unwrap()
    }

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm::new(2);
        let y = bn.forward(&batch(), true).unwrap();
        // Each column should have ~zero mean and ~unit variance.
        for f in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| y.as_slice()[r * 2 + f]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "col {f} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {f} var {var}");
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm::new(2);
        for _ in 0..200 {
            bn.forward(&batch(), true).unwrap();
        }
        // Column means: 2.5 and 25.
        assert!((bn.running_mean().as_slice()[0] - 2.5).abs() < 0.05);
        assert!((bn.running_mean().as_slice()[1] - 25.0).abs() < 0.5);
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm::new(2);
        for _ in 0..200 {
            bn.forward(&batch(), true).unwrap();
        }
        // A sample equal to the running mean normalizes to ~beta (0).
        let x = Tensor::from_vec(vec![2.5, 25.0], &[1, 2]).unwrap();
        let y = bn.forward(&x, false).unwrap();
        assert!(
            y.as_slice().iter().all(|v| v.abs() < 0.1),
            "{:?}",
            y.as_slice()
        );
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new(2);
        // Random-ish gamma/beta so the gradient isn't trivial.
        bn.import_params(&[
            (
                "gamma".into(),
                Tensor::from_vec(vec![1.5, 0.5], &[2]).unwrap(),
            ),
            (
                "beta".into(),
                Tensor::from_vec(vec![0.2, -0.3], &[2]).unwrap(),
            ),
        ])
        .unwrap();
        let x = batch();
        // Loss = weighted sum so per-element gradients differ.
        let weights: Vec<f32> = (0..8).map(|i| 0.1 * (i as f32 + 1.0)).collect();
        let loss =
            |y: &Tensor| -> f32 { y.as_slice().iter().zip(&weights).map(|(a, b)| a * b).sum() };
        let y = bn.forward(&x, true).unwrap();
        let gy = Tensor::from_vec(weights.clone(), y.dims()).unwrap();
        let gx = bn.backward(&gy).unwrap();
        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            // Fresh layers so running stats don't drift between evaluations.
            let mut bp = BatchNorm::new(2);
            bp.import_params(&bn.export_params()).unwrap();
            let mut bm = BatchNorm::new(2);
            bm.import_params(&bn.export_params()).unwrap();
            let lp = loss(&bp.forward(&xp, true).unwrap());
            let lm = loss(&bm.forward(&xm, true).unwrap());
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (gx.as_slice()[i] - num).abs() < 2e-2,
                "gx[{i}]: {} vs {num}",
                gx.as_slice()[i]
            );
        }
    }

    #[test]
    fn running_stats_are_checkpointed() {
        let mut bn = BatchNorm::new(2);
        for _ in 0..50 {
            bn.forward(&batch(), true).unwrap();
        }
        let exported = bn.export_params();
        assert_eq!(exported.len(), 4, "gamma, beta, and both running stats");
        let mut replica = BatchNorm::new(2);
        replica.import_params(&exported).unwrap();
        // The replica serves identically at inference.
        let x = Tensor::from_vec(vec![3.0, 7.0], &[1, 2]).unwrap();
        assert_eq!(
            bn.forward(&x, false).unwrap(),
            replica.forward(&x, false).unwrap()
        );
    }

    #[test]
    fn rejects_wrong_trailing_dim() {
        let mut bn = BatchNorm::new(3);
        assert!(bn.forward(&Tensor::ones(&[2, 2]), true).is_err());
        assert!(bn.forward(&Tensor::ones(&[4]), true).is_err());
    }
}
