//! Optimizers: SGD (NT3/TC1's choice) and Adam (PtychoNN's choice).

use crate::{DnnError, Optimizer, Result};
use std::collections::HashMap;
use viper_tensor::Tensor;

/// A step-decay learning-rate schedule: multiply the rate by `factor`
/// every `every` optimization steps (the usual CANDLE-style staircase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Steps between decays.
    pub every: u64,
    /// Multiplier applied at each decay (in `(0, 1]`).
    pub factor: f32,
}

impl StepDecay {
    fn rate_at(&self, base: f32, step: u64) -> f32 {
        let decays = step / self.every.max(1);
        base * self.factor.powi(decays.min(i32::MAX as u64) as i32)
    }
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Tensor>,
    step: u64,
    decay: Option<StepDecay>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
            step: 0,
            decay: None,
        }
    }

    /// Attach a step-decay schedule (builder-style).
    pub fn with_decay(mut self, every: u64, factor: f32) -> Self {
        assert!(every >= 1, "decay period must be >= 1");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decay factor must be in (0, 1]"
        );
        self.decay = Some(StepDecay { every, factor });
        self
    }

    /// The rate the *next* update will use (after decay).
    pub fn effective_lr(&self) -> f32 {
        match self.decay {
            Some(d) => d.rate_at(self.lr, self.step),
            None => self.lr,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Adjust the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn begin_step(&mut self) {
        self.step += 1;
    }

    fn export_state(&self) -> Vec<(String, Tensor)> {
        let mut out: Vec<(String, Tensor)> = self
            .velocity
            .iter()
            .map(|(k, v)| (format!("velocity/{k}"), v.clone()))
            .collect();
        out.push((
            "step".to_string(),
            Tensor::from_vec(vec![self.step as f32], &[1]).expect("scalar tensor"),
        ));
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn import_state(&mut self, state: &[(String, Tensor)]) -> Result<()> {
        self.velocity.clear();
        self.step = 0;
        for (name, tensor) in state {
            if name == "step" {
                self.step = tensor.as_slice().first().copied().unwrap_or(0.0) as u64;
                continue;
            }
            let key = name.strip_prefix("velocity/").ok_or_else(|| {
                DnnError::WeightMismatch(format!("unknown sgd state entry {name}"))
            })?;
            self.velocity.insert(key.to_string(), tensor.clone());
        }
        Ok(())
    }

    fn update(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) {
        let lr = self.effective_lr();
        if self.momentum == 0.0 {
            param.axpy(-lr, grad).expect("param/grad shape mismatch");
            return;
        }
        let v = self
            .velocity
            .entry(key.to_string())
            .or_insert_with(|| Tensor::zeros(param.dims()));
        // v = momentum * v - lr * grad; param += v.
        v.map_inplace(|x| x * self.momentum);
        v.axpy(-lr, grad).expect("param/grad shape mismatch");
        param.axpy(1.0, v).expect("param/velocity shape mismatch");
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    moments: HashMap<String, (Tensor, Tensor)>,
}

impl Adam {
    /// Adam with the canonical defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 0.999, 1e-8)
    }

    /// Fully parameterised Adam.
    pub fn with_params(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            moments: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn export_state(&self) -> Vec<(String, Tensor)> {
        let mut out = vec![(
            "t".to_string(),
            Tensor::from_vec(vec![self.t as f32], &[1]).expect("scalar tensor"),
        )];
        for (k, (m, v)) in &self.moments {
            out.push((format!("m/{k}"), m.clone()));
            out.push((format!("v/{k}"), v.clone()));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn import_state(&mut self, state: &[(String, Tensor)]) -> Result<()> {
        self.moments.clear();
        self.t = 0;
        for (name, tensor) in state {
            if name == "t" {
                self.t = tensor.as_slice().first().copied().unwrap_or(0.0) as i32;
            } else if let Some(key) = name.strip_prefix("m/") {
                self.moments
                    .entry(key.to_string())
                    .or_insert_with(|| (Tensor::zeros(tensor.dims()), Tensor::zeros(tensor.dims())))
                    .0 = tensor.clone();
            } else if let Some(key) = name.strip_prefix("v/") {
                self.moments
                    .entry(key.to_string())
                    .or_insert_with(|| (Tensor::zeros(tensor.dims()), Tensor::zeros(tensor.dims())))
                    .1 = tensor.clone();
            } else {
                return Err(DnnError::WeightMismatch(format!(
                    "unknown adam state entry {name}"
                )));
            }
        }
        Ok(())
    }

    fn update(&mut self, key: &str, param: &mut Tensor, grad: &Tensor) {
        let (m, v) = self
            .moments
            .entry(key.to_string())
            .or_insert_with(|| (Tensor::zeros(param.dims()), Tensor::zeros(param.dims())));
        let (b1, b2) = (self.beta1, self.beta2);
        // m = b1 m + (1-b1) g ; v = b2 v + (1-b2) g².
        for ((mv, vv), &g) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(grad.as_slice())
        {
            *mv = b1 * *mv + (1.0 - b1) * g;
            *vv = b2 * *vv + (1.0 - b2) * g * g;
        }
        let t = self.t.max(1);
        let bias1 = 1.0 - b1.powi(t);
        let bias2 = 1.0 - b2.powi(t);
        let lr = self.lr;
        let eps = self.eps;
        for ((p, &mv), &vv) in param
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(v.as_slice())
        {
            let m_hat = mv / bias1;
            let v_hat = vv / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)² with each optimizer; both must converge.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        for _ in 0..steps {
            opt.begin_step();
            let g = Tensor::from_vec(vec![2.0 * (x.as_slice()[0] - 3.0)], &[1]).unwrap();
            opt.update("x", &mut x, &g);
        }
        x.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = optimize(&mut sgd, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let x = optimize(&mut sgd, 200);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.3);
        let x = optimize(&mut adam, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction the first Adam step is ≈ lr (sign of grad).
        let mut adam = Adam::new(0.01);
        let mut x = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        adam.begin_step();
        adam.update("x", &mut x, &Tensor::from_vec(vec![123.0], &[1]).unwrap());
        assert!((x.as_slice()[0] - (1.0 - 0.01)).abs() < 1e-4);
    }

    #[test]
    fn separate_keys_have_separate_state() {
        let mut sgd = Sgd::with_momentum(0.1, 0.9);
        let mut a = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let mut b = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        sgd.update("a", &mut a, &g);
        sgd.update("a", &mut a, &g);
        sgd.update("b", &mut b, &g);
        // `a` has built momentum; `b` has not.
        assert!(a.as_slice()[0].abs() > 2.0 * b.as_slice()[0].abs());
    }

    #[test]
    fn lr_setter() {
        let mut sgd = Sgd::new(0.1);
        sgd.set_lr(0.5);
        assert_eq!(sgd.lr(), 0.5);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        Sgd::new(0.0);
    }

    /// Resuming from exported state continues the exact same trajectory.
    fn resume_matches_continuous(make: impl Fn() -> Box<dyn Optimizer>) {
        let g = |x: &Tensor| Tensor::from_vec(vec![2.0 * (x.as_slice()[0] - 3.0)], &[1]).unwrap();
        // Continuous run: 20 steps.
        let mut cont = make();
        let mut x_cont = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        for _ in 0..20 {
            cont.begin_step();
            let grad = g(&x_cont);
            cont.update("x", &mut x_cont, &grad);
        }
        // Split run: 10 steps, checkpoint, resume into a fresh optimizer.
        let mut first = make();
        let mut x_split = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        for _ in 0..10 {
            first.begin_step();
            let grad = g(&x_split);
            first.update("x", &mut x_split, &grad);
        }
        let state = first.export_state();
        let mut second = make();
        second.import_state(&state).unwrap();
        for _ in 0..10 {
            second.begin_step();
            let grad = g(&x_split);
            second.update("x", &mut x_split, &grad);
        }
        assert_eq!(
            x_cont.as_slice(),
            x_split.as_slice(),
            "resume must be bit-exact"
        );
    }

    #[test]
    fn sgd_momentum_resume_is_bit_exact() {
        resume_matches_continuous(|| Box::new(Sgd::with_momentum(0.05, 0.9)));
    }

    #[test]
    fn adam_resume_is_bit_exact() {
        resume_matches_continuous(|| Box::new(Adam::new(0.1)));
    }

    #[test]
    fn plain_sgd_state_is_just_the_step_counter() {
        let mut sgd = Sgd::new(0.1);
        let mut x = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        sgd.begin_step();
        sgd.update("x", &mut x, &Tensor::from_vec(vec![0.5], &[1]).unwrap());
        let state = sgd.export_state();
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].0, "step");
    }

    #[test]
    fn step_decay_staircases_the_rate() {
        let mut sgd = Sgd::new(0.1).with_decay(10, 0.5);
        assert!((sgd.effective_lr() - 0.1).abs() < 1e-9);
        for _ in 0..10 {
            sgd.begin_step();
        }
        assert!((sgd.effective_lr() - 0.05).abs() < 1e-9);
        for _ in 0..10 {
            sgd.begin_step();
        }
        assert!((sgd.effective_lr() - 0.025).abs() < 1e-9);
    }

    #[test]
    fn decay_survives_checkpoint_resume() {
        let mut a = Sgd::with_momentum(0.1, 0.9).with_decay(5, 0.5);
        let mut x = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        for _ in 0..7 {
            a.begin_step();
            a.update("x", &mut x, &g);
        }
        let mut b = Sgd::with_momentum(0.1, 0.9).with_decay(5, 0.5);
        b.import_state(&a.export_state()).unwrap();
        assert_eq!(a.effective_lr(), b.effective_lr());
    }

    #[test]
    fn import_rejects_unknown_entries() {
        let mut sgd = Sgd::with_momentum(0.1, 0.9);
        let bogus = vec![("moment/x".to_string(), Tensor::zeros(&[1]))];
        assert!(sgd.import_state(&bogus).is_err());
        let mut adam = Adam::new(0.1);
        assert!(adam.import_state(&bogus).is_err());
    }
}
