//! In-memory datasets with batched, optionally shuffled iteration.

use crate::{DnnError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use viper_tensor::Tensor;

/// A supervised dataset: features `x` and targets `y` with matching first
/// (sample) dimensions.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Tensor,
    y: Tensor,
}

impl Dataset {
    /// Build a dataset; `x` and `y` must agree on the sample count.
    pub fn new(x: Tensor, y: Tensor) -> Result<Self> {
        if x.dims().is_empty() || y.dims().is_empty() {
            return Err(DnnError::InvalidConfig(
                "dataset tensors need a sample dimension".into(),
            ));
        }
        if x.dims()[0] != y.dims()[0] {
            return Err(DnnError::ShapeMismatch(format!(
                "x has {} samples, y has {}",
                x.dims()[0],
                y.dims()[0]
            )));
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.dims()[0]
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature tensor.
    pub fn x(&self) -> &Tensor {
        &self.x
    }

    /// Target tensor.
    pub fn y(&self) -> &Tensor {
        &self.y
    }

    /// Number of batches per epoch at `batch_size` (last partial batch
    /// counts).
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.len().div_ceil(batch_size.max(1))
    }

    /// Copy selected samples into a new `(x, y)` pair.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Tensor)> {
        Ok((
            gather_rows(&self.x, indices)?,
            gather_rows(&self.y, indices)?,
        ))
    }

    /// Iterate one epoch of batches. When `shuffle` is set the sample order
    /// is permuted with the seeded RNG (deterministic per `(seed, epoch)`).
    pub fn batches(&self, batch_size: usize, shuffle: bool, seed: u64) -> BatchIter<'_> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        if shuffle {
            order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        }
        BatchIter {
            dataset: self,
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }
}

/// Copy rows (first-dimension slices) of a tensor.
fn gather_rows(t: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let dims = t.dims();
    let row: usize = dims[1..].iter().product();
    let src = t.as_slice();
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        if i >= dims[0] {
            return Err(DnnError::InvalidConfig(format!(
                "sample index {i} out of range"
            )));
        }
        data.extend_from_slice(&src[i * row..(i + 1) * row]);
    }
    let mut new_dims = dims.to_vec();
    new_dims[0] = indices.len();
    Ok(Tensor::from_vec(data, &new_dims)?)
}

/// Iterator over one epoch of batches.
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Tensor);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        // Indices come from 0..len, so gather cannot fail.
        Some(self.dataset.gather(idx).expect("valid batch indices"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let x = Tensor::from_vec((0..n * 2).map(|v| v as f32).collect(), &[n, 2]).unwrap();
        let y = Tensor::from_vec((0..n).map(|v| v as f32).collect(), &[n, 1]).unwrap();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn construction_validates_sample_counts() {
        let x = Tensor::zeros(&[3, 2]);
        let y = Tensor::zeros(&[4, 1]);
        assert!(Dataset::new(x, y).is_err());
    }

    #[test]
    fn batches_cover_all_samples_once() {
        let d = dataset(10);
        let mut seen = [false; 10];
        for (bx, _) in d.batches(3, false, 0) {
            for r in 0..bx.dims()[0] {
                let sample = (bx.as_slice()[r * 2] / 2.0) as usize;
                assert!(!seen[sample]);
                seen[sample] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn last_batch_may_be_partial() {
        let d = dataset(10);
        let sizes: Vec<usize> = d.batches(4, false, 0).map(|(x, _)| x.dims()[0]).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(d.batches_per_epoch(4), 3);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let d = dataset(32);
        let a: Vec<f32> = d.batches(32, true, 7).next().unwrap().0.as_slice().to_vec();
        let b: Vec<f32> = d.batches(32, true, 7).next().unwrap().0.as_slice().to_vec();
        let c: Vec<f32> = d.batches(32, true, 8).next().unwrap().0.as_slice().to_vec();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gather_preserves_row_contents() {
        let d = dataset(5);
        let (x, y) = d.gather(&[4, 0]).unwrap();
        assert_eq!(x.as_slice(), &[8.0, 9.0, 0.0, 1.0]);
        assert_eq!(y.as_slice(), &[4.0, 0.0]);
        assert!(d.gather(&[99]).is_err());
    }

    #[test]
    fn x_and_y_accessors() {
        let d = dataset(3);
        assert_eq!(d.x().dims(), &[3, 2]);
        assert_eq!(d.y().dims(), &[3, 1]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }
}
