//! Training losses: MSE, MAE (PtychoNN's metric), and fused softmax
//! cross-entropy (NT3/TC1's metric).

use crate::{DnnError, Loss, Result};
use viper_tensor::Tensor;

fn check_same(pred: &Tensor, target: &Tensor, what: &str) -> Result<()> {
    if pred.dims() != target.dims() {
        return Err(DnnError::ShapeMismatch(format!(
            "{what}: pred {:?} vs target {:?}",
            pred.dims(),
            target.dims()
        )));
    }
    Ok(())
}

/// Mean squared error over all elements.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mse;

impl Loss for Mse {
    fn name(&self) -> &'static str {
        "mse"
    }

    fn forward(&self, pred: &Tensor, target: &Tensor) -> Result<f64> {
        check_same(pred, target, "mse")?;
        let n = pred.len().max(1) as f64;
        Ok(pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| {
                let d = (p - t) as f64;
                d * d
            })
            .sum::<f64>()
            / n)
    }

    fn backward(&self, pred: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same(pred, target, "mse")?;
        let scale = 2.0 / pred.len().max(1) as f32;
        Ok(pred.zip(target, move |p, t| scale * (p - t))?)
    }
}

/// Mean absolute error over all elements — PtychoNN's inference-loss metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mae;

impl Loss for Mae {
    fn name(&self) -> &'static str {
        "mae"
    }

    fn forward(&self, pred: &Tensor, target: &Tensor) -> Result<f64> {
        check_same(pred, target, "mae")?;
        let n = pred.len().max(1) as f64;
        Ok(pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&p, &t)| ((p - t) as f64).abs())
            .sum::<f64>()
            / n)
    }

    fn backward(&self, pred: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same(pred, target, "mae")?;
        let scale = 1.0 / pred.len().max(1) as f32;
        Ok(pred.zip(target, move |p, t| {
            if p > t {
                scale
            } else if p < t {
                -scale
            } else {
                0.0
            }
        })?)
    }
}

/// Softmax + categorical cross-entropy, fused.
///
/// `pred` is raw logits `[batch, classes]`; `target` is one-hot (or a
/// probability distribution) of the same shape. The fused gradient is the
/// numerically stable `(softmax(pred) - target) / batch`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    fn softmax_rows(pred: &Tensor) -> Result<Tensor> {
        crate::layers::Softmax::apply(pred)
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn name(&self) -> &'static str {
        "softmax_cross_entropy"
    }

    fn forward(&self, pred: &Tensor, target: &Tensor) -> Result<f64> {
        check_same(pred, target, "softmax_cross_entropy")?;
        let probs = Self::softmax_rows(pred)?;
        let batch = pred.dims()[0].max(1) as f64;
        let mut loss = 0.0f64;
        for (&p, &t) in probs.as_slice().iter().zip(target.as_slice()) {
            if t > 0.0 {
                loss -= t as f64 * (p.max(1e-12) as f64).ln();
            }
        }
        Ok(loss / batch)
    }

    fn backward(&self, pred: &Tensor, target: &Tensor) -> Result<Tensor> {
        check_same(pred, target, "softmax_cross_entropy")?;
        let probs = Self::softmax_rows(pred)?;
        let scale = 1.0 / pred.dims()[0].max(1) as f32;
        Ok(probs.zip(target, move |p, t| scale * (p - t))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn mse_forward_and_gradient() {
        let pred = t(&[1.0, 2.0], &[2]);
        let target = t(&[0.0, 4.0], &[2]);
        let l = Mse.forward(&pred, &target).unwrap();
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-9);
        let g = Mse.backward(&pred, &target).unwrap();
        assert_eq!(g.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn mae_forward_and_gradient() {
        let pred = t(&[1.0, 2.0, 3.0], &[3]);
        let target = t(&[0.0, 2.0, 5.0], &[3]);
        let l = Mae.forward(&pred, &target).unwrap();
        assert!((l - 1.0).abs() < 1e-9);
        let g = Mae.backward(&pred, &target).unwrap();
        let third = 1.0 / 3.0f32;
        assert_eq!(g.as_slice(), &[third, 0.0, -third]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let pred = t(&[20.0, -20.0], &[1, 2]);
        let target = t(&[1.0, 0.0], &[1, 2]);
        assert!(SoftmaxCrossEntropy.forward(&pred, &target).unwrap() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_log_classes() {
        let pred = t(&[0.0, 0.0, 0.0, 0.0], &[1, 4]);
        let target = t(&[0.0, 1.0, 0.0, 0.0], &[1, 4]);
        let l = SoftmaxCrossEntropy.forward(&pred, &target).unwrap();
        assert!((l - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let pred = t(&[0.5, -0.3, 0.8], &[1, 3]);
        let target = t(&[0.0, 1.0, 0.0], &[1, 3]);
        let g = SoftmaxCrossEntropy.backward(&pred, &target).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = pred.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = pred.clone();
            pm.as_mut_slice()[i] -= eps;
            let lp = SoftmaxCrossEntropy.forward(&pp, &target).unwrap();
            let lm = SoftmaxCrossEntropy.forward(&pm, &target).unwrap();
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (g.as_slice()[i] - num).abs() < 1e-3,
                "g[{i}]: {} vs {num}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn losses_reject_shape_mismatches() {
        let a = t(&[1.0], &[1]);
        let b = t(&[1.0, 2.0], &[2]);
        assert!(Mse.forward(&a, &b).is_err());
        assert!(Mae.backward(&a, &b).is_err());
        assert!(SoftmaxCrossEntropy.forward(&a, &b).is_err());
    }
}
