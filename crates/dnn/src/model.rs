//! The sequential model and its Keras-style training loop.

use crate::{Callback, Dataset, DnnError, Layer, Loss, Optimizer, Result, TrainEvent};
use viper_tensor::Tensor;

/// A sequential stack of layers with a `fit`/`predict` interface.
pub struct Model {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    iteration: u64,
    seed: u64,
}

/// Configuration of one [`Model::fit`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Samples per training batch.
    pub batch_size: usize,
    /// Shuffle sample order each epoch (seeded; deterministic per model).
    pub shuffle: bool,
}

/// Summary of a completed [`Model::fit`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Total training iterations executed.
    pub iterations: u64,
    /// Per-iteration batch losses.
    pub iteration_losses: Vec<f64>,
    /// Per-epoch mean losses.
    pub epoch_losses: Vec<f64>,
}

impl Model {
    /// An empty model. `seed` controls shuffling.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Model {
            name: name.into(),
            layers: Vec::new(),
            iteration: 0,
            seed,
        }
    }

    /// Append a layer (builder style). The layer is renamed
    /// `"{base}_{index}"` so weight names are unique.
    pub fn push(mut self, mut layer: impl Layer + 'static) -> Self {
        let unique = format!("{}_{}", layer.name(), self.layers.len());
        layer.set_name(unique);
        self.layers.push(Box::new(layer));
        self
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Global training iterations completed so far.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Total trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.export_params()
                    .iter()
                    .map(|(_, t)| t.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training)?;
        }
        Ok(x)
    }

    /// Backward pass through all layers (after a forward pass).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Zero all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// One optimization step on a batch; returns the batch loss.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
    ) -> Result<f64> {
        self.zero_grads();
        let pred = self.forward(x, true)?;
        let loss_value = loss.forward(&pred, y)?;
        let grad = loss.backward(&pred, y)?;
        self.backward(&grad)?;
        opt.begin_step();
        for layer in &mut self.layers {
            let lname = layer.name().to_string();
            layer.visit_params(&mut |suffix, param, grad| {
                opt.update(&format!("{lname}/{suffix}"), param, grad);
            });
        }
        self.iteration += 1;
        Ok(loss_value)
    }

    /// Inference (no dropout, no gradient bookkeeping kept).
    pub fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward(x, false)
    }

    /// Mean loss of the model over a dataset.
    pub fn evaluate(&mut self, data: &Dataset, loss: &dyn Loss, batch_size: usize) -> Result<f64> {
        if data.is_empty() {
            return Err(DnnError::InvalidConfig(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (bx, by) in data.batches(batch_size, false, 0) {
            let n = bx.dims()[0];
            let pred = self.forward(&bx, false)?;
            total += loss.forward(&pred, &by)? * n as f64;
            count += n;
        }
        Ok(total / count as f64)
    }

    /// Keras-style training loop with a callback list.
    pub fn fit(
        &mut self,
        data: &Dataset,
        loss: &dyn Loss,
        opt: &mut dyn Optimizer,
        cfg: &FitConfig,
        callbacks: &mut [&mut dyn Callback],
    ) -> Result<FitReport> {
        if cfg.epochs == 0 || cfg.batch_size == 0 {
            return Err(DnnError::InvalidConfig(
                "epochs and batch_size must be positive".into(),
            ));
        }
        if data.is_empty() {
            return Err(DnnError::InvalidConfig(
                "cannot fit on an empty dataset".into(),
            ));
        }
        for cb in callbacks.iter_mut() {
            cb.on_train_begin(self);
        }
        let mut report = FitReport {
            iterations: 0,
            iteration_losses: Vec::new(),
            epoch_losses: Vec::with_capacity(cfg.epochs),
        };
        for epoch in 0..cfg.epochs {
            let mut epoch_total = 0.0;
            let mut batches = 0usize;
            let shuffle_seed = self.seed.wrapping_add(epoch as u64);
            // Materialise the epoch's batches up front: `batches` borrows
            // `data`, not `self`, so training inside the loop is fine.
            for (bx, by) in data.batches(cfg.batch_size, cfg.shuffle, shuffle_seed) {
                let batch_loss = self.train_batch(&bx, &by, loss, opt)?;
                epoch_total += batch_loss;
                batches += 1;
                report.iterations += 1;
                report.iteration_losses.push(batch_loss);
                let event = TrainEvent {
                    epoch,
                    iteration: self.iteration,
                    batch_loss,
                };
                for cb in callbacks.iter_mut() {
                    cb.on_iteration_end(&event, self);
                }
            }
            let mean = epoch_total / batches.max(1) as f64;
            report.epoch_losses.push(mean);
            for cb in callbacks.iter_mut() {
                cb.on_epoch_end(epoch, mean, self);
            }
        }
        for cb in callbacks.iter_mut() {
            cb.on_train_end(self);
        }
        Ok(report)
    }

    /// Snapshot the *complete* training state — weights, optimizer state,
    /// and the iteration counter — as named tensors. This is the
    /// "checkpoint including the optimizer state and other intermediate
    /// states for resuming training" the paper describes (§2), suitable for
    /// serializing with any `viper_formats` format.
    pub fn training_state(&self, opt: &dyn Optimizer) -> Vec<(String, Tensor)> {
        let mut out: Vec<(String, Tensor)> = self
            .named_weights()
            .into_iter()
            .map(|(n, t)| (format!("model/{n}"), t))
            .collect();
        out.extend(
            opt.export_state()
                .into_iter()
                .map(|(n, t)| (format!("optimizer/{n}"), t)),
        );
        out.push((
            "meta/iteration".to_string(),
            Tensor::from_vec(vec![self.iteration as f32], &[1]).expect("scalar tensor"),
        ));
        out
    }

    /// Restore state captured by [`Model::training_state`]: weights,
    /// optimizer state, and the iteration counter. Resumed training is
    /// bit-exact with the uninterrupted run (given the same data order).
    pub fn restore_training_state(
        &mut self,
        opt: &mut dyn Optimizer,
        state: &[(String, Tensor)],
    ) -> Result<()> {
        let mut weights = Vec::new();
        let mut opt_state = Vec::new();
        for (name, tensor) in state {
            if let Some(rest) = name.strip_prefix("model/") {
                weights.push((rest.to_string(), tensor.clone()));
            } else if let Some(rest) = name.strip_prefix("optimizer/") {
                opt_state.push((rest.to_string(), tensor.clone()));
            } else if name == "meta/iteration" {
                self.iteration = tensor.as_slice().first().copied().unwrap_or(0.0) as u64;
            } else {
                return Err(DnnError::WeightMismatch(format!(
                    "unknown training-state entry {name}"
                )));
            }
        }
        self.set_weights(&weights)?;
        opt.import_state(&opt_state)
    }

    /// Snapshot all weights as `("layer/param", tensor)` pairs — the unit
    /// Viper serializes, transfers, and loads.
    pub fn named_weights(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for layer in &self.layers {
            for (suffix, tensor) in layer.export_params() {
                out.push((format!("{}/{suffix}", layer.name()), tensor));
            }
        }
        out
    }

    /// Load weights produced by [`Model::named_weights`] on an identical
    /// architecture. Unknown names or shape mismatches are rejected; layers
    /// absent from `weights` keep their current parameters.
    pub fn set_weights(&mut self, weights: &[(String, Tensor)]) -> Result<()> {
        for (name, tensor) in weights {
            let Some((layer_name, suffix)) = name.split_once('/') else {
                return Err(DnnError::WeightMismatch(format!(
                    "malformed weight name {name}"
                )));
            };
            let layer = self
                .layers
                .iter_mut()
                .find(|l| l.name() == layer_name)
                .ok_or_else(|| DnnError::WeightMismatch(format!("no layer named {layer_name}")))?;
            layer.import_params(&[(suffix.to_string(), tensor.clone())])?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("name", &self.name)
            .field(
                "layers",
                &self
                    .layers
                    .iter()
                    .map(|l| l.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("iteration", &self.iteration)
            .field("parameters", &self.num_parameters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callback::LossRecorder;
    use crate::{layers, losses, optimizers};

    fn xor_dataset() -> Dataset {
        // XOR, one-hot targets.
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]).unwrap();
        Dataset::new(x, y).unwrap()
    }

    fn xor_model() -> Model {
        Model::new("xor", 3)
            .push(layers::Dense::with_seed(2, 16, 1))
            .push(layers::Tanh::new())
            .push(layers::Dense::with_seed(16, 2, 2))
    }

    #[test]
    fn learns_xor() {
        let mut model = xor_model();
        let data = xor_dataset();
        let loss = losses::SoftmaxCrossEntropy;
        let mut opt = optimizers::Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 300,
            batch_size: 4,
            shuffle: false,
        };
        let report = model.fit(&data, &loss, &mut opt, &cfg, &mut []).unwrap();
        let final_loss = *report.epoch_losses.last().unwrap();
        assert!(final_loss < 0.05, "final loss {final_loss}");
        // Check actual predictions.
        let pred = model.predict(data.x()).unwrap();
        for r in 0..4 {
            let row = &pred.as_slice()[r * 2..(r + 1) * 2];
            let want = &data.y().as_slice()[r * 2..(r + 1) * 2];
            let pred_class = if row[0] > row[1] { 0 } else { 1 };
            let want_class = if want[0] > want[1] { 0 } else { 1 };
            assert_eq!(pred_class, want_class, "sample {r}");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut model = xor_model();
        let data = xor_dataset();
        let loss = losses::SoftmaxCrossEntropy;
        let mut opt = optimizers::Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 50,
            batch_size: 4,
            shuffle: false,
        };
        let report = model.fit(&data, &loss, &mut opt, &cfg, &mut []).unwrap();
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn callbacks_see_every_iteration() {
        let mut model = xor_model();
        let data = xor_dataset();
        let mut recorder = LossRecorder::new();
        let cfg = FitConfig {
            epochs: 3,
            batch_size: 2,
            shuffle: true,
        };
        let mut opt = optimizers::Sgd::new(0.1);
        let report = model
            .fit(
                &data,
                &losses::SoftmaxCrossEntropy,
                &mut opt,
                &cfg,
                &mut [&mut recorder],
            )
            .unwrap();
        // 4 samples / batch 2 = 2 iterations per epoch, 3 epochs.
        assert_eq!(report.iterations, 6);
        assert_eq!(recorder.losses.len(), 6);
        assert_eq!(recorder.epoch_losses.len(), 3);
        assert_eq!(model.iteration(), 6);
    }

    #[test]
    fn weights_roundtrip_preserves_predictions() {
        let mut a = xor_model();
        let data = xor_dataset();
        let mut opt = optimizers::Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 20,
            batch_size: 4,
            shuffle: false,
        };
        a.fit(&data, &losses::SoftmaxCrossEntropy, &mut opt, &cfg, &mut [])
            .unwrap();

        let mut b = xor_model();
        b.set_weights(&a.named_weights()).unwrap();
        let pa = a.predict(data.x()).unwrap();
        let pb = b.predict(data.x()).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn set_weights_rejects_unknown_names() {
        let mut m = xor_model();
        let bad = vec![("ghost/kernel".to_string(), Tensor::zeros(&[2, 2]))];
        assert!(m.set_weights(&bad).is_err());
        let malformed = vec![("nokernel".to_string(), Tensor::zeros(&[2, 2]))];
        assert!(m.set_weights(&malformed).is_err());
    }

    #[test]
    fn named_weights_are_unique_and_prefixed() {
        let m = xor_model();
        let names: Vec<String> = m.named_weights().into_iter().map(|(n, _)| n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().all(|n| n.contains('/')));
        assert_eq!(names.len(), 4); // two dense layers x (kernel, bias)
    }

    #[test]
    fn num_parameters_counts_everything() {
        let m = xor_model();
        // dense(2,16): 2*16+16 = 48; dense(16,2): 16*2+2 = 34.
        assert_eq!(m.num_parameters(), 82);
    }

    #[test]
    fn conv_pipeline_trains() {
        // A minimal NT3-flavoured conv stack on synthetic 1-D signals.
        let n = 32;
        let len = 16;
        let mut xdata = Vec::with_capacity(n * len);
        let mut ydata = Vec::with_capacity(n * 2);
        for i in 0..n {
            let class = i % 2;
            for t in 0..len {
                // Class 0: low frequency; class 1: high frequency.
                let freq = if class == 0 { 1.0 } else { 4.0 };
                xdata.push((freq * t as f32 * 0.4).sin());
            }
            ydata.extend_from_slice(if class == 0 { &[1.0, 0.0] } else { &[0.0, 1.0] });
        }
        let x = Tensor::from_vec(xdata, &[n, len, 1]).unwrap();
        let y = Tensor::from_vec(ydata, &[n, 2]).unwrap();
        let data = Dataset::new(x, y).unwrap();

        let mut model = Model::new("mini-nt3", 5)
            .push(layers::Conv1D::with_seed(3, 1, 8, 1, 21))
            .push(layers::ReLU::new())
            .push(layers::MaxPool1D::new(2, 2))
            .push(layers::Flatten::new())
            .push(layers::Dense::with_seed(7 * 8, 2, 22));
        let mut opt = optimizers::Adam::new(0.01);
        let cfg = FitConfig {
            epochs: 30,
            batch_size: 8,
            shuffle: true,
        };
        let report = model
            .fit(&data, &losses::SoftmaxCrossEntropy, &mut opt, &cfg, &mut [])
            .unwrap();
        let (first, last) = (report.epoch_losses[0], *report.epoch_losses.last().unwrap());
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn invalid_fit_configs_rejected() {
        let mut m = xor_model();
        let data = xor_dataset();
        let mut opt = optimizers::Sgd::new(0.1);
        let loss = losses::SoftmaxCrossEntropy;
        assert!(m
            .fit(
                &data,
                &loss,
                &mut opt,
                &FitConfig {
                    epochs: 0,
                    batch_size: 1,
                    shuffle: false
                },
                &mut []
            )
            .is_err());
        assert!(m
            .fit(
                &data,
                &loss,
                &mut opt,
                &FitConfig {
                    epochs: 1,
                    batch_size: 0,
                    shuffle: false
                },
                &mut []
            )
            .is_err());
    }

    #[test]
    fn batchnorm_model_trains_and_checkpoints() {
        // A conv stack with BatchNorm: training converges, and a replica
        // restored from named weights (including running stats) serves
        // identically at inference.
        let n = 32;
        let len = 16;
        let mut xdata = Vec::new();
        let mut ydata = Vec::new();
        for i in 0..n {
            let class = i % 2;
            for t in 0..len {
                let freq = if class == 0 { 1.0 } else { 4.0 };
                // Deliberately unnormalized inputs: BatchNorm's job.
                xdata.push(50.0 + 20.0 * (freq * t as f32 * 0.4).sin());
            }
            ydata.extend_from_slice(if class == 0 { &[1.0, 0.0] } else { &[0.0, 1.0] });
        }
        let x = Tensor::from_vec(xdata, &[n, len, 1]).unwrap();
        let y = Tensor::from_vec(ydata, &[n, 2]).unwrap();
        let data = Dataset::new(x, y).unwrap();

        let mut model = Model::new("bn-net", 5)
            .push(layers::Conv1D::with_seed(3, 1, 8, 1, 31))
            .push(layers::BatchNorm::new(8))
            .push(layers::ReLU::new())
            .push(layers::Flatten::new())
            .push(layers::Dense::with_seed(14 * 8, 2, 32));
        let mut opt = optimizers::Adam::new(0.01);
        let cfg = FitConfig {
            epochs: 25,
            batch_size: 8,
            shuffle: true,
        };
        let report = model
            .fit(&data, &losses::SoftmaxCrossEntropy, &mut opt, &cfg, &mut [])
            .unwrap();
        let (first, last) = (report.epoch_losses[0], *report.epoch_losses.last().unwrap());
        assert!(last < first * 0.5, "loss {first} -> {last}");

        // Named weights include the running statistics.
        let weights = model.named_weights();
        assert!(weights.iter().any(|(n, _)| n.ends_with("running_mean")));
        let mut replica = Model::new("bn-net", 99)
            .push(layers::Conv1D::with_seed(3, 1, 8, 1, 41))
            .push(layers::BatchNorm::new(8))
            .push(layers::ReLU::new())
            .push(layers::Flatten::new())
            .push(layers::Dense::with_seed(14 * 8, 2, 42));
        replica.set_weights(&weights).unwrap();
        assert_eq!(
            model.predict(data.x()).unwrap(),
            replica.predict(data.x()).unwrap()
        );
    }

    #[test]
    fn full_training_state_resume_is_bit_exact() {
        let data = xor_dataset();
        let loss = losses::SoftmaxCrossEntropy;
        let cfg = FitConfig {
            epochs: 10,
            batch_size: 2,
            shuffle: false,
        };

        // Uninterrupted: 20 epochs.
        let mut cont = xor_model();
        let mut cont_opt = optimizers::Adam::new(0.05);
        cont.fit(&data, &loss, &mut cont_opt, &cfg, &mut [])
            .unwrap();
        let cont2 = cont
            .fit(&data, &loss, &mut cont_opt, &cfg, &mut [])
            .unwrap();

        // Interrupted: 10 epochs, checkpoint through the serialization
        // stack, restore into fresh objects, 10 more epochs.
        let mut a = xor_model();
        let mut a_opt = optimizers::Adam::new(0.05);
        a.fit(&data, &loss, &mut a_opt, &cfg, &mut []).unwrap();
        let state = a.training_state(&a_opt);

        let mut b = xor_model();
        let mut b_opt = optimizers::Adam::new(0.05);
        b.restore_training_state(&mut b_opt, &state).unwrap();
        assert_eq!(b.iteration(), a.iteration(), "iteration counter restored");
        let resumed = b.fit(&data, &loss, &mut b_opt, &cfg, &mut []).unwrap();

        assert_eq!(resumed.iteration_losses, cont2.iteration_losses);
        assert_eq!(
            b.predict(data.x()).unwrap(),
            cont.predict(data.x()).unwrap()
        );
    }

    #[test]
    fn restore_rejects_unknown_entries() {
        let mut m = xor_model();
        let mut opt = optimizers::Sgd::new(0.1);
        let bogus = vec![("mystery/blob".to_string(), Tensor::zeros(&[1]))];
        assert!(m.restore_training_state(&mut opt, &bogus).is_err());
    }

    #[test]
    fn evaluate_matches_training_loss_on_converged_model() {
        let mut m = xor_model();
        let data = xor_dataset();
        let loss = losses::SoftmaxCrossEntropy;
        let mut opt = optimizers::Adam::new(0.05);
        let cfg = FitConfig {
            epochs: 200,
            batch_size: 4,
            shuffle: false,
        };
        m.fit(&data, &loss, &mut opt, &cfg, &mut []).unwrap();
        let eval = m.evaluate(&data, &loss, 4).unwrap();
        assert!(eval < 0.1, "eval {eval}");
    }
}
